//! Property: the closed control loop conserves packets and re-converges.
//!
//! Two laws, checked under seeded fault storms over ECN-reactive
//! (DCTCP-style) sources:
//!
//! 1. **Conservation.** With sources that defer, back off, and retry on
//!    their own schedule — and a memory budget refusing setups and
//!    deferring slabs — every minted packet still ends the run in exactly
//!    one ledger column:
//!
//!    ```text
//!    emitted = transmitted + admission_dropped + evicted + residue
//!    ```
//!
//!    Setup refusals and slab deferrals sit *outside* the identity by
//!    design: a refused emission is retried before the packet is minted,
//!    so it consumes no conservation budget — like flow-cap drops, the
//!    budget changes timing, not totals.
//!
//! 2. **Convergence.** A storm confined to the head of the run marks and
//!    drops packets, driving source scales down; once the storm passes
//!    and the backlog drains, the channel is clean (offered equals
//!    shaped, so queues cannot rebuild) and additive recovery is
//!    monotone. Given a tail long enough to cover the worst-case climb
//!    from the scale floor, every source must end back at full rate.

use std::sync::Arc;

use eiffel_chaos::{AdmitPolicy, FaultFamily, FaultPlan};
use eiffel_core::{MemBudget, FLOW_SETUP_BYTES, PKT_SLAB_BYTES};
use eiffel_qdisc::{run_sharded, EiffelQdisc, HostConfig, ShardedConfig};
use eiffel_sim::{Rate, SECOND};
use eiffel_workloads::{ClosedLoopParams, SCALE_ONE};
use proptest::prelude::*;

const ALL_FAMILIES: [FaultFamily; 5] = [
    FaultFamily::Stall,
    FaultFamily::TimerJitter,
    FaultFamily::SlowConsumer,
    FaultFamily::RingSqueeze,
    FaultFamily::CompletionLoss,
];

/// Backlog-building families only: the convergence law needs the fault
/// pressure (and hence the marks) to stop when the storm windows close.
const BACKLOG_FAMILIES: [FaultFamily; 3] = [
    FaultFamily::Stall,
    FaultFamily::SlowConsumer,
    FaultFamily::RingSqueeze,
];

fn host(flows: usize) -> HostConfig {
    HostConfig {
        flows,
        aggregate: Rate::mbps(12 * flows as u64),
        duration: SECOND / 8,
        bin: SECOND / 20,
        tsq_budget: 8,
        batch: 4,
    }
}

/// The shaped per-MTU pacing gap the sources' `offered_gap` is measured
/// against (mirrors the derivation inside `sharded::drive`).
fn pacing_gap(h: &HostConfig) -> u64 {
    1_500 * 8 * 1_000_000_000 / (h.aggregate.as_bps() / h.flows as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Conservation across the whole closed-loop feature cross-product:
    /// ECN-reactive sources under sustained overload, a seeded fault
    /// storm, and (half the time) a memory budget tight enough to refuse
    /// setups and defer slabs.
    #[test]
    fn closed_loop_storms_conserve_packets(
        flows in 4usize..14,
        shards in 1usize..5,
        pkts in 6u64..24,
        overload_shift in 0u32..4, // offered gap = pacing gap >> shift
        tenths in 0u32..9,
        budget_sel in 0u32..2,
        seed in 0u64..1_000,
    ) {
        let h = host(flows);
        let mut cfg = ShardedConfig::new(shards, h);
        cfg.pkts_per_flow = Some(pkts);
        cfg.chaos.admit = AdmitPolicy::EcnMark { cap: 32, mark_at: 8 };
        cfg.closed_loop = Some(ClosedLoopParams::default());
        cfg.offered_gap = Some((pacing_gap(&cfg.host) >> overload_shift).max(1));
        cfg.chaos.plan = FaultPlan::storm(
            seed,
            shards,
            SECOND / 16,
            f64::from(tenths) / 10.0,
            &ALL_FAMILIES,
        );
        let budget = (budget_sel == 1).then(|| {
            // Room for roughly half the flows' setups plus a handful of
            // slabs: all three degradation tiers stay in play.
            Arc::new(MemBudget::new(
                flows as u64 / 2 * FLOW_SETUP_BYTES + 6 * PKT_SLAB_BYTES,
            ))
        });
        cfg.mem = budget.clone();

        let rep = run_sharded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        prop_assert_eq!(
            rep.emitted,
            rep.transmitted + rep.admission_dropped + rep.evicted + rep.residue,
            "closed-loop conservation (tx={} adm={} evict={} residue={})",
            rep.transmitted, rep.admission_dropped, rep.evicted, rep.residue
        );
        prop_assert!(rep.audits >= 1, "end-of-run audit must have run");
        let cl = rep.cl.expect("closed loop configured");
        prop_assert_eq!(cl.flows, flows);
        // Per-shard counters must agree with the merged totals.
        let sojourns: u64 = rep.per_shard.iter().map(|s| s.sojourn.total()).sum();
        prop_assert_eq!(sojourns, rep.transmitted);
        if let Some(b) = budget {
            prop_assert!(rep.mem_peak <= b.budget(), "hard ceiling");
            prop_assert_eq!(b.in_use(), 0, "books close at zero");
        } else {
            prop_assert_eq!(rep.setup_refused, 0);
            prop_assert_eq!(rep.mem_deferrals, 0);
        }
    }

    /// Rates converge after the storm: scales driven down by storm-time
    /// marks and drops climb back to full once the channel is clean.
    /// The storm is confined to the first quarter of the run; sources
    /// offer at *half* the shaped rate, so outside a fault window the
    /// queues drain and the steady-state backlog sits below the mark
    /// threshold (which scales with the flow count — a stall's parked
    /// flood crosses it, normal operation cannot). The quiet tail
    /// (~94 ms) dwarfs the worst-case recovery climb (floor 256 → 1024
    /// at +256 per 2-packet window over ≤ 8 ms gaps ≈ 35 ms), so a
    /// source ending below full scale means the loop wedged.
    #[test]
    fn sources_reconverge_after_the_storm(
        flows in 4usize..12,
        shards in 1usize..4,
        tenths in 4u32..10,
        seed in 0u64..1_000,
    ) {
        let h = host(flows);
        let mut cfg = ShardedConfig::new(shards, h);
        cfg.chaos.admit = AdmitPolicy::EcnMark {
            cap: 8 * flows,
            mark_at: 2 * flows,
        };
        cfg.closed_loop = Some(ClosedLoopParams {
            gain_shift: 4,
            window: 2,
            min_scale: 256,
            additive: 256,
            initial_scale: SCALE_ONE,
            slow_start: true,
        });
        cfg.offered_gap = Some(pacing_gap(&cfg.host) * 2);
        cfg.chaos.plan = FaultPlan::storm(
            seed,
            shards,
            SECOND / 32,
            f64::from(tenths) / 10.0,
            &BACKLOG_FAMILIES,
        );

        let rep = run_sharded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        let cl = rep.cl.expect("closed loop configured");
        prop_assert!(
            (cl.min_scale - 1.0).abs() < f64::EPSILON,
            "every source must re-converge to full rate after the storm \
             (min_scale {} windows {} marked {} losses {})",
            cl.min_scale, cl.windows, cl.marked, cl.losses
        );
        prop_assert_eq!(
            rep.emitted,
            rep.transmitted + rep.admission_dropped + rep.evicted + rep.residue
        );
    }
}

/// Non-vacuity guard for the reconvergence property: across a spread of
/// storm seeds, at least some runs must actually mark (and therefore
/// actually back off) — otherwise `sources_reconverge_after_the_storm`
/// would hold trivially on permanently-clean channels.
#[test]
fn reconvergence_storms_are_not_vacuous() {
    let mut marked_runs = 0u32;
    for seed in 0..24 {
        let flows = 8;
        let mut cfg = ShardedConfig::new(2, host(flows));
        cfg.chaos.admit = AdmitPolicy::EcnMark {
            cap: 8 * flows,
            mark_at: 2 * flows,
        };
        cfg.closed_loop = Some(ClosedLoopParams {
            gain_shift: 4,
            window: 2,
            min_scale: 256,
            additive: 256,
            initial_scale: SCALE_ONE,
            slow_start: true,
        });
        cfg.offered_gap = Some(pacing_gap(&cfg.host) * 2);
        cfg.chaos.plan = FaultPlan::storm(seed, 2, SECOND / 32, 0.9, &BACKLOG_FAMILIES);
        let rep = run_sharded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        let cl = rep.cl.expect("closed loop configured");
        if cl.marked > 0 {
            marked_runs += 1;
        }
    }
    assert!(
        marked_runs > 0,
        "no storm out of 24 produced a single ECN mark — the reconvergence \
         property is testing nothing"
    );
}
