//! Threaded-vs-simulated equivalence: the same finite workload pushed
//! through the virtual-clock [`ShardedHost`](eiffel_qdisc::run_sharded_traced)
//! and the wall-clock threaded runtime must agree on every **time-free**
//! invariant — per-flow packet counts, per-flow byte totals, and drop
//! totals. Release *times* differ by construction (one clock is simulated,
//! one is the wall), which is exactly why the comparison sticks to counts:
//! those are pinned by the shared stage code and the TSQ protocol, not by
//! scheduling luck. This is the bridge that lets the virtual-clock
//! proptests keep guarding the threaded path.
//!
//! Caps are left off: under a flow cap, *drop counts* depend on whether a
//! completion beats the retry in wall time, so they are not a time-free
//! invariant (the ordering suite covers cap bookkeeping instead).

use eiffel_qdisc::{
    run_sharded_traced, run_threaded_traced, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig,
    ShaperQdisc, ShardedConfig, ThreadedConfig,
};
use eiffel_sim::{Rate, SECOND};
use proptest::prelude::*;

fn host(flows: usize, tsq_budget: u32, batch: usize) -> HostConfig {
    HostConfig {
        flows,
        aggregate: Rate::mbps(60 * flows as u64), // 200 µs pacing gap
        duration: 2 * SECOND,                     // sim bound; finite workloads end early
        bin: SECOND / 20,
        tsq_budget,
        batch,
    }
}

fn assert_time_free_equivalence<Q: ShaperQdisc + Send>(
    mut mk: impl FnMut(usize) -> Q,
    host: &HostConfig,
    shards: usize,
    pkts: u64,
    label: &str,
) {
    let mut sim_cfg = ShardedConfig::new(shards, host.clone());
    sim_cfg.pkts_per_flow = Some(pkts);
    let threaded_cfg = ThreadedConfig::finite(shards, host.clone(), pkts);

    let (sim_rep, sim_tr) = run_sharded_traced(&mut mk, &sim_cfg);
    let (thr_rep, thr_tr) = run_threaded_traced(&mut mk, &threaded_cfg);

    assert!(!thr_rep.timed_out, "{label}: threaded run hit wall limit");
    assert_eq!(
        sim_rep.transmitted, thr_rep.transmitted,
        "{label}: total packets"
    );
    assert_eq!(sim_rep.dropped, 0, "{label}: no caps ⇒ no sim drops");
    assert_eq!(thr_rep.dropped, 0, "{label}: no caps ⇒ no threaded drops");
    for flow in 0..host.flows as u32 {
        let sim_releases = sim_tr.flow_releases(flow);
        assert_eq!(
            sim_releases.len(),
            thr_tr.flow_release_ids(flow).len(),
            "{label}: flow {flow} packet count"
        );
        let sim_bytes: u64 = sim_releases.iter().map(|&(_, b)| b as u64).sum();
        assert_eq!(
            sim_bytes,
            thr_tr.flow_bytes(flow),
            "{label}: flow {flow} byte total"
        );
        assert_eq!(thr_tr.flow_drop_count(flow), 0, "{label}: flow {flow}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random workload shapes, Eiffel on both runtimes.
    #[test]
    fn threaded_equals_simulated_time_free(
        flows in 4usize..20,
        shards in 1usize..6,
        pkts in 3u64..12,
        tsq_budget in 1u32..4,
        batch in prop_oneof![Just(1usize), Just(8)],
    ) {
        assert_time_free_equivalence(
            |_| EiffelQdisc::new(1 << 14, 100_000),
            &host(flows, tsq_budget, batch),
            shards,
            pkts,
            "eiffel",
        );
    }
}

/// All three disciplines at a fixed, larger shape — the cross-discipline
/// spot check (the property above sweeps shapes on the flagship).
#[test]
fn all_disciplines_agree_across_runtimes() {
    let h = host(24, 2, 4);
    assert_time_free_equivalence(|_| EiffelQdisc::new(1 << 14, 100_000), &h, 3, 8, "eiffel");
    assert_time_free_equivalence(
        |_| CarouselQdisc::new(1 << 16, 20_000),
        &h,
        3,
        8,
        "carousel",
    );
    assert_time_free_equivalence(|_| FqQdisc::new(), &h, 3, 8, "fq");
}
