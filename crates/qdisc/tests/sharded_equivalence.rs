//! Property: the sharded host is *per-flow identical* to the single-shard
//! host — same release times and byte counts per flow, same drop
//! decisions — under the stable flow→shard hash, for every shaping qdisc.
//!
//! Why this should hold (and what the test pins): a flow's release schedule
//! depends only on its own pacing clock, the qdisc geometry (shared by all
//! shards), and the timer discipline. Exact-style qdiscs arm timers at the
//! per-flow deadlines themselves; periodic qdiscs fire on *absolute* slot
//! boundaries (`host::wanted_deadline`), so N wheels tick in phase with one
//! wheel. Cross-flow order at equal instants is allowed to differ (it
//! depends on which shard's softirq runs first); per-flow projections are
//! not.

use eiffel_qdisc::{
    run_sharded_traced, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, ShaperQdisc, ShardedConfig,
};
use eiffel_sim::{Rate, SECOND};
use proptest::prelude::*;

/// Compare an N-shard run against the 1-shard run, per flow.
fn assert_per_flow_identical<Q: ShaperQdisc>(
    mut mk: impl FnMut(usize) -> Q + Clone,
    cfg_multi: &ShardedConfig,
    label: &str,
) {
    let mut cfg_single = cfg_multi.clone();
    cfg_single.shards = 1;
    let (rep_multi, tr_multi) = run_sharded_traced(&mut mk, cfg_multi);
    let (rep_single, tr_single) = run_sharded_traced(&mut mk, &cfg_single);

    assert_eq!(
        rep_multi.transmitted, rep_single.transmitted,
        "{label}: total packets"
    );
    assert_eq!(
        rep_multi.dropped, rep_single.dropped,
        "{label}: total drops"
    );
    for flow in 0..cfg_multi.host.flows as u32 {
        assert_eq!(
            tr_multi.flow_releases(flow),
            tr_single.flow_releases(flow),
            "{label}: flow {flow} release schedule (times + bytes)"
        );
        assert_eq!(
            tr_multi.flow_drops(flow),
            tr_single.flow_drops(flow),
            "{label}: flow {flow} drop decisions"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized flow mixes and shard counts, all three disciplines.
    #[test]
    fn n_shards_is_per_flow_identical_to_one_shard(
        flows in 3usize..24,
        shards in 2usize..6,
        agg_mbps in 24u64..360,
        tsq_budget in 1u32..4,
        batch in prop_oneof![Just(1usize), Just(8), Just(16)],
        cap_sel in 0u32..4,
    ) {
        let host = HostConfig {
            flows,
            aggregate: Rate::mbps(agg_mbps),
            duration: SECOND / 8,
            bin: SECOND / 20,
            tsq_budget,
            batch,
        };
        let mut cfg = ShardedConfig::new(shards, host);
        // 0 = no cap; otherwise a cap at/below the TSQ budget so it
        // can actually bind and produce drop decisions to compare.
        cfg.flow_cap = (cap_sel > 0).then_some(cap_sel);
        // Eiffel: exact timers off the cFFS bucket edges.
        assert_per_flow_identical(
            |_| EiffelQdisc::new(1 << 14, 100_000),
            &cfg,
            "eiffel",
        );
        // Carousel: periodic slot-aligned timers over per-shard wheels.
        assert_per_flow_identical(
            |_| CarouselQdisc::new(1 << 16, 20_000),
            &cfg,
            "carousel",
        );
        // FQ: balanced-tree flow table, exact timers.
        assert_per_flow_identical(|_| FqQdisc::new(), &cfg, "fq");
    }
}
