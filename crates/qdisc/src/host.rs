//! The kernel host model: drives a qdisc with the §5.1.1 workload and
//! meters its CPU into virtual-second bins.
//!
//! Workload: `n` *bulk* flows (neper keeps them continuously backlogged),
//! each with `SO_MAX_PACING_RATE = aggregate/n`; the **qdisc** does the
//! pacing. TCP Small Queues is modelled as a cap on per-flow packets inside
//! the qdisc: a flow emits back-to-back until its budget is exhausted and
//! resumes when a dequeue completion hands budget back (the TSQ callback).
//! This keeps ~`tsq_budget × n` packets inside the shaper at all times —
//! "the maximum amount of calculations", as the paper puts it.
//!
//! CPU accounting (see `eiffel_sim::cpu` for the constants):
//! * enqueue path (syscall context → `System`): modelled lock + stack cost,
//!   plus the *measured* real nanoseconds of the qdisc's enqueue code;
//! * timer path (softirq → `SoftIrq`): modelled IRQ entry per timer fire,
//!   plus the measured real nanoseconds of the dequeue loop;
//! * timers: `Exact` qdiscs arm at `next_deadline()`; `Periodic` qdiscs
//!   (Carousel) fire every wheel slot while packets are pending.

use eiffel_sim::{Nanos, Rate, SECOND};

use crate::qdisc::{ShaperQdisc, TimerStyle};

/// Experiment parameters (defaults = the paper's §5.1.1 setup, scaled in
/// duration).
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Number of paced flows (paper: 20 000).
    pub flows: usize,
    /// Aggregate `SO_MAX_PACING_RATE` across flows (paper: 24 Gbps).
    pub aggregate: Rate,
    /// Virtual duration of the run (paper: 100 s; default 2 s keeps the
    /// harness fast — CPU shares are per-bin, so duration only adds
    /// samples).
    pub duration: Nanos,
    /// CPU accounting bin (paper sampled 1 s with dstat; default 100 ms for
    /// more CDF points per virtual second).
    pub bin: Nanos,
    /// TSQ: max packets a flow may have inside the qdisc.
    pub tsq_budget: u32,
    /// Softirq drain batch: packets released per
    /// [`ShaperQdisc::dequeue_batch`] call (1 = the classic
    /// packet-at-a-time softirq; larger values amortize the qdisc's
    /// min-find across the batch, Figure 13's mechanism on the host side).
    pub batch: usize,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            flows: 20_000,
            aggregate: Rate::gbps(24),
            duration: 2 * SECOND,
            bin: SECOND / 10,
            tsq_budget: 2,
            batch: 1,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Qdisc name.
    pub name: &'static str,
    /// Sorted per-bin total cores (CDF samples, Figure 9).
    pub cores_sorted: Vec<f64>,
    /// Median cores.
    pub median_cores: f64,
    /// Per-bin `(system, softirq)` cores (Figure 10 panels).
    pub breakdown: Vec<(f64, f64)>,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Achieved aggregate rate in bits/s.
    pub achieved_bps: f64,
    /// Timer fires observed.
    pub timer_fires: u64,
}

/// When the qdisc wants its timer next, given the current instant.
///
/// `Exact` qdiscs report their own deadline. `Periodic` qdiscs fire at the
/// next *absolute* slot boundary (`period`-aligned), matching a timing
/// wheel's fixed slot clock — phase does not depend on when the first
/// packet arrived, so N sharded wheels tick in lockstep with one big wheel
/// (the shard-equivalence property relies on this).
pub(crate) fn wanted_deadline(qdisc: &impl ShaperQdisc, now: Nanos) -> Option<Nanos> {
    match qdisc.timer_style() {
        TimerStyle::Exact => qdisc.next_deadline(now),
        TimerStyle::Periodic { period } => qdisc
            .next_deadline(now)
            .map(|_| now - now % period + period),
    }
}

/// Runs the workload against `qdisc` and reports metered CPU.
///
/// This is the single-core case of the one shared event loop behind
/// [`crate::sharded`]: one simulated core, one qdisc, one softirq
/// timer, one meter — so the plain and sharded host models can never
/// drift apart. Event rules (documented in [`crate::sharded`]): timers
/// sort before sources at equal virtual time; periodic timers fire on
/// absolute slot boundaries.
pub fn run(qdisc: impl ShaperQdisc, cfg: &HostConfig) -> HostReport {
    let sharded_cfg = crate::sharded::ShardedConfig::new(1, cfg.clone());
    let mut qdisc = Some(qdisc);
    let outcome = crate::sharded::drive(
        |_| qdisc.take().expect("exactly one shard"),
        &sharded_cfg,
        None,
    );
    let sh = &outcome.shards[0];
    HostReport {
        name: sh.qdisc.name(),
        cores_sorted: sh.meter.total_cores_sorted(),
        median_cores: sh.meter.median_cores(),
        breakdown: sh.meter.cores_per_bin(),
        transmitted: sh.transmitted,
        achieved_bps: sh.tx_bytes as f64 * 8.0 / (cfg.duration as f64 / 1e9),
        timer_fires: sh.timer_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carousel::CarouselQdisc;
    use crate::eiffel::EiffelQdisc;
    use crate::fq::FqQdisc;

    fn small_cfg() -> HostConfig {
        HostConfig {
            flows: 200,
            aggregate: Rate::mbps(240), // 1.2 Mbps per flow, as in the paper
            duration: SECOND / 2,
            bin: SECOND / 10,
            tsq_budget: 2,
            batch: 1,
        }
    }

    /// All three qdiscs must deliver the configured aggregate rate — the
    /// paper compares CPU at *equal shaping behaviour*.
    #[test]
    fn all_qdiscs_achieve_the_aggregate_rate() {
        let cfg = small_cfg();
        let want = cfg.aggregate.as_bps() as f64;
        for report in [
            run(EiffelQdisc::new(20_000, 100_000), &cfg),
            run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
            run(FqQdisc::new(), &cfg),
        ] {
            let rel = (report.achieved_bps - want).abs() / want;
            assert!(
                rel < 0.05,
                "{}: achieved {:.1} Mbps vs {} Mbps configured",
                report.name,
                report.achieved_bps / 1e6,
                want / 1e6
            );
        }
    }

    /// Carousel must fire its timer far more often than Eiffel (periodic
    /// slots vs exact deadlines) — the mechanism behind Figure 10 (right).
    #[test]
    fn carousel_fires_many_more_timers_than_eiffel() {
        let cfg = small_cfg();
        let e = run(EiffelQdisc::new(20_000, 100_000), &cfg);
        let c = run(CarouselQdisc::new(1 << 20, 2_000), &cfg);
        assert!(
            c.timer_fires > 5 * e.timer_fires,
            "carousel {} vs eiffel {} timer fires",
            c.timer_fires,
            e.timer_fires
        );
    }

    /// The TSQ mechanism must keep the shaper loaded (the worst-case
    /// backlog the paper wants) yet never deadlock the sources.
    #[test]
    fn tsq_does_not_deadlock_sources() {
        let mut cfg = small_cfg();
        cfg.tsq_budget = 1;
        let r = run(EiffelQdisc::new(20_000, 100_000), &cfg);
        let want = cfg.aggregate.as_bps() as f64;
        assert!(
            (r.achieved_bps - want).abs() / want < 0.1,
            "budget-1 still paces"
        );
    }
}
