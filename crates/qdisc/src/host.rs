//! The kernel host model: drives a qdisc with the §5.1.1 workload and
//! meters its CPU into virtual-second bins.
//!
//! Workload: `n` *bulk* flows (neper keeps them continuously backlogged),
//! each with `SO_MAX_PACING_RATE = aggregate/n`; the **qdisc** does the
//! pacing. TCP Small Queues is modelled as a cap on per-flow packets inside
//! the qdisc: a flow emits back-to-back until its budget is exhausted and
//! resumes when a dequeue completion hands budget back (the TSQ callback).
//! This keeps ~`tsq_budget × n` packets inside the shaper at all times —
//! "the maximum amount of calculations", as the paper puts it.
//!
//! CPU accounting (see `eiffel_sim::cpu` for the constants):
//! * enqueue path (syscall context → `System`): modelled lock + stack cost,
//!   plus the *measured* real nanoseconds of the qdisc's enqueue code;
//! * timer path (softirq → `SoftIrq`): modelled IRQ entry per timer fire,
//!   plus the measured real nanoseconds of the dequeue loop;
//! * timers: `Exact` qdiscs arm at `next_deadline()`; `Periodic` qdiscs
//!   (Carousel) fire every wheel slot while packets are pending.

use eiffel_sim::cpu::{IRQ_ENTRY_NS, LOCK_NS, PER_PACKET_STACK_NS};
use eiffel_sim::{CpuCategory, CpuMeter, EventQueue, Nanos, Packet, Rate, SECOND};

use crate::qdisc::{ShaperQdisc, TimerStyle};

/// Experiment parameters (defaults = the paper's §5.1.1 setup, scaled in
/// duration).
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Number of paced flows (paper: 20 000).
    pub flows: usize,
    /// Aggregate `SO_MAX_PACING_RATE` across flows (paper: 24 Gbps).
    pub aggregate: Rate,
    /// Virtual duration of the run (paper: 100 s; default 2 s keeps the
    /// harness fast — CPU shares are per-bin, so duration only adds
    /// samples).
    pub duration: Nanos,
    /// CPU accounting bin (paper sampled 1 s with dstat; default 100 ms for
    /// more CDF points per virtual second).
    pub bin: Nanos,
    /// TSQ: max packets a flow may have inside the qdisc.
    pub tsq_budget: u32,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            flows: 20_000,
            aggregate: Rate::gbps(24),
            duration: 2 * SECOND,
            bin: SECOND / 10,
            tsq_budget: 2,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Qdisc name.
    pub name: &'static str,
    /// Sorted per-bin total cores (CDF samples, Figure 9).
    pub cores_sorted: Vec<f64>,
    /// Median cores.
    pub median_cores: f64,
    /// Per-bin `(system, softirq)` cores (Figure 10 panels).
    pub breakdown: Vec<(f64, f64)>,
    /// Packets transmitted.
    pub transmitted: u64,
    /// Achieved aggregate rate in bits/s.
    pub achieved_bps: f64,
    /// Timer fires observed.
    pub timer_fires: u64,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// A flow has (possibly) TSQ budget: emit its next bulk packet.
    Source(u32),
    /// The qdisc timer fires (epoch guards stale timers).
    Timer(u64),
}

/// Runs the workload against `qdisc` and reports metered CPU.
pub fn run(mut qdisc: impl ShaperQdisc, cfg: &HostConfig) -> HostReport {
    let mut meter = CpuMeter::new(cfg.bin, cfg.duration);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let per_flow_bps = (cfg.aggregate.as_bps() / cfg.flows as u64).max(1);
    let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps; // ns per MTU

    // TSQ budgets.
    let mut budget = vec![cfg.tsq_budget; cfg.flows];

    // Timer management: epoch invalidates superseded timers.
    let mut timer_epoch: u64 = 0;
    let mut timer_armed_at: Option<Nanos> = None;

    // Stagger first emissions across one pacing gap so the shaper sees a
    // smooth aggregate from the start rather than a synchronized burst.
    for id in 0..cfg.flows as u32 {
        let at = pacing_gap * id as u64 / cfg.flows as u64;
        events.schedule(at, Ev::Source(id));
    }

    let mut next_pkt_id = 0u64;
    let mut transmitted = 0u64;
    let mut tx_bytes = 0u64;
    let mut timer_fires = 0u64;

    while let Some((now, ev)) = events.pop() {
        if now >= cfg.duration {
            break;
        }
        match ev {
            Ev::Source(id) => {
                if budget[id as usize] == 0 {
                    continue; // TSQ: a completion will reschedule us.
                }
                budget[id as usize] -= 1;
                let pkt = Packet::mtu(next_pkt_id, id, now);
                next_pkt_id += 1;
                // Syscall path: lock + stack constants, measured enqueue.
                meter.charge(now, CpuCategory::System, LOCK_NS + PER_PACKET_STACK_NS);
                meter.measure(now, CpuCategory::System, || {
                    qdisc.enqueue(now, pkt, per_flow_bps);
                });
                if budget[id as usize] > 0 {
                    // Bulk sender: next packet goes straight away.
                    events.schedule(now, Ev::Source(id));
                }
                // Arm (or tighten) the timer.
                let want = match qdisc.timer_style() {
                    TimerStyle::Exact => qdisc.next_deadline(now),
                    TimerStyle::Periodic { period } => {
                        qdisc.next_deadline(now).map(|_| now + period)
                    }
                };
                if let Some(want) = want {
                    let want = want.max(now);
                    if timer_armed_at.map_or(true, |at| want < at) {
                        timer_epoch += 1;
                        timer_armed_at = Some(want);
                        events.schedule(want, Ev::Timer(timer_epoch));
                    }
                }
            }
            Ev::Timer(epoch) => {
                if epoch != timer_epoch {
                    continue; // superseded timer, never fired in hardware
                }
                timer_armed_at = None;
                timer_fires += 1;
                meter.charge(now, CpuCategory::SoftIrq, IRQ_ENTRY_NS);
                // Drain everything due, under measurement.
                let mut released: Vec<(u32, u32)> = Vec::new();
                meter.measure(now, CpuCategory::SoftIrq, || {
                    while let Some(p) = qdisc.dequeue(now) {
                        released.push((p.flow, p.bytes));
                    }
                });
                for (flow, bytes) in released {
                    transmitted += 1;
                    tx_bytes += bytes as u64;
                    let i = flow as usize;
                    if budget[i] == 0 {
                        // TSQ callback: the flow was throttled — resume it.
                        events.schedule(now, Ev::Source(flow));
                    }
                    budget[i] += 1;
                }
                // Re-arm.
                let want = match qdisc.timer_style() {
                    TimerStyle::Exact => qdisc.next_deadline(now),
                    TimerStyle::Periodic { period } => {
                        qdisc.next_deadline(now).map(|_| now + period)
                    }
                };
                if let Some(want) = want {
                    let want = want.max(now + 1);
                    timer_epoch += 1;
                    timer_armed_at = Some(want);
                    events.schedule(want, Ev::Timer(timer_epoch));
                }
            }
        }
    }

    let breakdown = meter.cores_per_bin();
    HostReport {
        name: qdisc.name(),
        cores_sorted: meter.total_cores_sorted(),
        median_cores: meter.median_cores(),
        breakdown,
        transmitted,
        achieved_bps: tx_bytes as f64 * 8.0 / (cfg.duration as f64 / 1e9),
        timer_fires,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carousel::CarouselQdisc;
    use crate::eiffel::EiffelQdisc;
    use crate::fq::FqQdisc;

    fn small_cfg() -> HostConfig {
        HostConfig {
            flows: 200,
            aggregate: Rate::mbps(240), // 1.2 Mbps per flow, as in the paper
            duration: SECOND / 2,
            bin: SECOND / 10,
            tsq_budget: 2,
        }
    }

    /// All three qdiscs must deliver the configured aggregate rate — the
    /// paper compares CPU at *equal shaping behaviour*.
    #[test]
    fn all_qdiscs_achieve_the_aggregate_rate() {
        let cfg = small_cfg();
        let want = cfg.aggregate.as_bps() as f64;
        for report in [
            run(EiffelQdisc::new(20_000, 100_000), &cfg),
            run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
            run(FqQdisc::new(), &cfg),
        ] {
            let rel = (report.achieved_bps - want).abs() / want;
            assert!(
                rel < 0.05,
                "{}: achieved {:.1} Mbps vs {} Mbps configured",
                report.name,
                report.achieved_bps / 1e6,
                want / 1e6
            );
        }
    }

    /// Carousel must fire its timer far more often than Eiffel (periodic
    /// slots vs exact deadlines) — the mechanism behind Figure 10 (right).
    #[test]
    fn carousel_fires_many_more_timers_than_eiffel() {
        let cfg = small_cfg();
        let e = run(EiffelQdisc::new(20_000, 100_000), &cfg);
        let c = run(CarouselQdisc::new(1 << 20, 2_000), &cfg);
        assert!(
            c.timer_fires > 5 * e.timer_fires,
            "carousel {} vs eiffel {} timer fires",
            c.timer_fires,
            e.timer_fires
        );
    }

    /// The TSQ mechanism must keep the shaper loaded (the worst-case
    /// backlog the paper wants) yet never deadlock the sources.
    #[test]
    fn tsq_does_not_deadlock_sources() {
        let mut cfg = small_cfg();
        cfg.tsq_budget = 1;
        let r = run(EiffelQdisc::new(20_000, 100_000), &cfg);
        let want = cfg.aggregate.as_bps() as f64;
        assert!(
            (r.achieved_bps - want).abs() / want < 0.1,
            "budget-1 still paces"
        );
    }
}
