//! A work-conserving *ranked* qdisc over any [`RankedQueue`] backend.
//!
//! The shaping qdiscs rank packets by release time; the chaos bake-off
//! needs the five integer backends (BH, cFFS, Approx, SP-PIFO, RIFO)
//! behind the same [`ShaperQdisc`] contract so one threaded runtime can
//! drive them through identical fault plans. This adapter assigns each
//! packet a rank from a deterministic [`RankPattern`] over `(flow,
//! per-flow sequence)` — both runtimes produce identical ranks for
//! identical workloads — and serves strictly rank-order, work-conserving
//! (every resident packet is due now; the softirq drains the backlog).
//!
//! It is deliberately *not* a shaper: throughput differences between
//! backends under faults come from the queue structure, not pacing.

use std::collections::HashMap;

use eiffel_core::{QueueConfig, QueueKind, RankedQueue};
use eiffel_sim::{FlowId, Nanos, Packet};
use eiffel_workloads::RankPattern;

use crate::qdisc::{ShaperQdisc, TimerStyle};

/// Stable report name for a backend kind.
pub fn backend_label(kind: QueueKind) -> &'static str {
    match kind {
        QueueKind::Ffs => "ranked-ffs",
        QueueKind::HierFfs => "ranked-hffs",
        QueueKind::Cffs => "ranked-cffs",
        QueueKind::Gradient => "ranked-gradient",
        QueueKind::ApproxGradient { .. } => "ranked-approx",
        QueueKind::CircularApprox { .. } => "ranked-capprox",
        QueueKind::BucketHeap => "ranked-bh",
        QueueKind::SpPifo { .. } => "ranked-sp-pifo",
        QueueKind::Rifo => "ranked-rifo",
        QueueKind::BinaryHeap => "ranked-heap",
        QueueKind::BTree => "ranked-btree",
    }
}

/// Ranked work-conserving qdisc: any [`QueueKind`] behind [`ShaperQdisc`].
pub struct RankedShaperQdisc {
    queue: Box<dyn RankedQueue<Packet> + Send>,
    pattern: RankPattern,
    /// Highest rank the queue can represent (patterns are clamped here so
    /// fixed-range backends never refuse an enqueue).
    max_rank: u64,
    seq: HashMap<FlowId, u64>,
    name: &'static str,
    scratch: Vec<(u64, Packet)>,
}

impl RankedShaperQdisc {
    /// Builds the adapter. `cfg` sizes bucketed backends; rank assignment
    /// clamps to `cfg.span() - 1` so fixed-range kinds always admit.
    pub fn new(kind: QueueKind, cfg: QueueConfig, pattern: RankPattern) -> Self {
        RankedShaperQdisc {
            queue: kind.build_send(cfg),
            pattern,
            max_rank: cfg.start_rank + cfg.span() - 1,
            seq: HashMap::new(),
            name: backend_label(kind),
            scratch: Vec::new(),
        }
    }
}

impl ShaperQdisc for RankedShaperQdisc {
    fn name(&self) -> &'static str {
        self.name
    }

    fn enqueue(&mut self, _now: Nanos, mut pkt: Packet, _pacing_rate_bps: u64) {
        let seq = self.seq.entry(pkt.flow).or_insert(0);
        let rank = self.pattern.rank(pkt.flow, *seq).min(self.max_rank);
        *seq += 1;
        pkt.rank = rank;
        self.queue
            .enqueue(rank, pkt)
            .unwrap_or_else(|_| unreachable!("ranks are clamped to the queue range"));
    }

    fn dequeue(&mut self, _now: Nanos) -> Option<Packet> {
        self.queue.dequeue_min().map(|(_, p)| p)
    }

    fn dequeue_batch(&mut self, _now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        self.scratch.clear();
        let n = self.queue.dequeue_batch(max, &mut self.scratch);
        out.extend(self.scratch.drain(..).map(|(_, p)| p));
        n
    }

    fn evict_worst(&mut self) -> Option<Packet> {
        // Exact on cFFS/HierFFS/Approx/BTree backends; `None` on the rest
        // (SP-PIFO's per-queue FIFOs and the binary heap have no max
        // path), where admission falls back to tail drop.
        self.queue.dequeue_max().map(|(_, p)| p)
    }

    fn next_deadline(&self, _now: Nanos) -> Option<Nanos> {
        // Work-conserving: anything resident is due immediately. The host
        // clamps to `now` (tighten) or `now + 1` (rearm).
        if self.queue.is_empty() {
            None
        } else {
            Some(0)
        }
    }

    fn timer_style(&self) -> TimerStyle {
        TimerStyle::Exact
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mtu(id: u64, flow: FlowId) -> Packet {
        Packet::mtu(id, flow, 0)
    }

    #[test]
    fn serves_in_rank_order_and_conserves() {
        let pattern = RankPattern::Uniform {
            max: 1_000,
            seed: 3,
        };
        let cfg = QueueConfig::new(2_048, 1, 0);
        for kind in [
            QueueKind::Cffs,
            QueueKind::BucketHeap,
            QueueKind::ApproxGradient { alpha: 64 },
            QueueKind::SpPifo { queues: 32 },
            QueueKind::Rifo,
        ] {
            let mut q = RankedShaperQdisc::new(kind, cfg, pattern);
            for i in 0..100 {
                q.enqueue(0, mtu(i, (i % 7) as FlowId), 0);
            }
            assert_eq!(q.len(), 100, "{kind:?}");
            assert!(q.next_deadline(5).is_some());
            let mut out = Vec::new();
            q.dequeue_batch(0, 1_000, &mut out);
            assert_eq!(out.len(), 100, "{kind:?} conserves");
            assert!(q.is_empty());
            assert_eq!(q.next_deadline(0), None);
        }
    }

    #[test]
    fn exact_backends_release_sorted_ranks() {
        let pattern = RankPattern::Uniform { max: 500, seed: 9 };
        let mut q = RankedShaperQdisc::new(QueueKind::Cffs, QueueConfig::new(512, 1, 0), pattern);
        for i in 0..200 {
            q.enqueue(0, mtu(i, (i % 5) as FlowId), 0);
        }
        let mut ranks = Vec::new();
        while let Some(p) = q.dequeue(0) {
            ranks.push(p.rank);
        }
        assert_eq!(ranks.len(), 200);
        assert!(ranks.windows(2).all(|w| w[0] <= w[1]), "sorted release");
    }

    #[test]
    fn evict_worst_takes_the_max_rank() {
        let pattern = RankPattern::Uniform { max: 400, seed: 1 };
        let mut q = RankedShaperQdisc::new(QueueKind::Cffs, QueueConfig::new(512, 1, 0), pattern);
        for i in 0..50 {
            q.enqueue(0, mtu(i, 1), 0);
        }
        let max_resident = {
            let mut c =
                RankedShaperQdisc::new(QueueKind::Cffs, QueueConfig::new(512, 1, 0), pattern);
            for i in 0..50 {
                c.enqueue(0, mtu(i, 1), 0);
            }
            let mut m = 0;
            while let Some(p) = c.dequeue(0) {
                m = m.max(p.rank);
            }
            m
        };
        let evicted = q.evict_worst().expect("cFFS has an exact max path");
        assert_eq!(evicted.rank, max_resident);
        assert_eq!(q.len(), 49);
    }

    #[test]
    fn sp_pifo_has_no_max_path_and_reports_none() {
        let pattern = RankPattern::Uniform { max: 100, seed: 1 };
        let mut q = RankedShaperQdisc::new(
            QueueKind::SpPifo { queues: 8 },
            QueueConfig::new(128, 1, 0),
            pattern,
        );
        q.enqueue(0, mtu(0, 1), 0);
        assert_eq!(q.len(), 1);
        assert!(q.evict_worst().is_none(), "falls back to tail drop");
        assert_eq!(q.len(), 1, "no element silently lost");
    }
}
