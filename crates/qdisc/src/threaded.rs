//! The threaded multi-core host: one real OS thread per shard, lock-free
//! rings between them, wall-clock time.
//!
//! [`crate::sharded`] proved the N-shard host *semantically* equal to the
//! single-shard host — but under one virtual clock on one OS thread, which
//! cannot measure the paper's headline systems claim (§5.1, Fig 9: Eiffel
//! shapes 20k flows with ~1/20 the cores FQ needs). This module runs the
//! same shards as real threads:
//!
//! ```text
//!             data ring (SPSC, Packet)          ┌───────────────┐
//!        ┌──────────────────────────────────▶   │ shard thread 0 │──┐
//!        │    ctrl ring (SPSC, CtrlMsg)         │  qdisc + timer │  │
//! ┌──────┴─┐ ─────────────────────────────▶     │  + CpuMeter    │  │
//! │producer│                                    └───────────────┘  │
//! │ /demux │   ◀─────────────────────────────────────────────────  │
//! └──────┬─┘    completion ring (SPSC, FlowId)                     ▼
//!        │                                       CounterBlock (stats,
//!        └──▶ … shard thread N-1                 read without locks)
//! ```
//!
//! * The **producer/demux thread** plays the application + TCP stack: it
//!   paces flow start-up, enforces the TSQ budget, hashes each packet to
//!   its home shard with [`eiffel_sim::shard_of`], and pushes it into that
//!   shard's data ring ([`eiffel_core::ring::SpscRing`]).
//! * Each **shard thread** owns one qdisc instance and one softirq timer,
//!   and runs *the same stage code* (`Shard::ingress`, `Shard::softirq`,
//!   `Shard::tighten_timer`, `Shard::rearm`) that [`crate::sharded`]'s
//!   event loop drives under the virtual clock — the two runtimes share one
//!   body and cannot drift. The event axis here is the wall clock
//!   (nanoseconds since run start), polled instead of popped from a heap.
//! * **Completions** flow back over a second SPSC ring: one [`FlowId`] per
//!   released packet, returning TSQ budget to the producer — the TSQ
//!   callback, as a message.
//! * The **control plane** is a third, cold ring: the producer sends
//!   [`CtrlMsg::Shutdown`] (drain for finite workloads, immediate for timed
//!   runs); config travels by value at spawn time.
//! * **Per-shard statistics** are single-writer counter blocks
//!   ([`eiffel_core::CounterBlock`]) the producer reads without locks while
//!   the run is live; exact totals come from joining the shard.
//!
//! There are **no locks anywhere on the per-packet path** — rings and
//! single-writer atomics only. Blocking is by spin-then-yield, and the
//! producer always drains completion rings while waiting on a full data
//! ring (and vice versa the shards only ever block pushing completions,
//! which the producer drains), so the pair cannot deadlock.
//!
//! Determinism: wall-clock runs cannot reproduce release *times*, so the
//! equivalence suite uses **finite workloads** ([`ThreadedConfig::finite`]):
//! every flow emits exactly `pkts_per_flow` packets and the run ends when
//! the qdiscs drain. The per-flow packet/byte/drop totals are then
//! time-free invariants, identical to a [`crate::sharded`] run of the same
//! workload — so the virtual-clock proptests keep guarding the threaded
//! path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

use eiffel_core::ring::{SpscConsumer, SpscProducer, SpscRing};
use eiffel_core::CounterBlock;
use eiffel_sim::{shard_of, CpuMeter, FlowId, Nanos, Packet, WallNanos, SECOND};

use crate::host::HostConfig;
use crate::qdisc::ShaperQdisc;
use crate::sharded::{Shard, ShardStats};

/// Counter slots published by each shard thread (single writer each).
const C_TRANSMITTED: usize = 0;
const C_TX_BYTES: usize = 1;
const C_TIMER_FIRES: usize = 2;
const C_ENQUEUED: usize = 3;
/// One shard's live statistics block.
type ShardCounters = CounterBlock<4>;

/// Control-plane messages (cold path; one per run today).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Stop the shard. With `drain`, finish everything already queued
    /// (ring + qdisc) first; without, stop at the next loop iteration
    /// (timed runs, where lingering packets are expected).
    Shutdown {
        /// Whether to empty the data ring and qdisc before exiting.
        drain: bool,
    },
}

/// Parameters of a threaded run.
///
/// Reuses [`HostConfig`] for the workload shape (`flows`, `aggregate`,
/// `tsq_budget`, `batch`, `bin`), with one deliberate difference:
/// **`host.duration` is ignored** — a threaded run is bounded by
/// [`wall_limit`](Self::wall_limit) real nanoseconds (and, for finite
/// workloads, usually ends earlier by draining).
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// OS threads / qdisc instances. Flows are split by
    /// [`eiffel_sim::shard_of`], exactly as in the simulated host.
    pub shards: usize,
    /// Workload shape (see type-level docs: `duration` is ignored).
    pub host: HostConfig,
    /// Per-flow in-qdisc packet cap, as in
    /// [`crate::sharded::ShardedConfig::flow_cap`]. Note drop *counts* under
    /// a cap are scheduling-dependent on real threads (a completion may or
    /// may not beat the retry), so the equivalence suite leaves this off.
    pub flow_cap: Option<u32>,
    /// Finite workload: each flow emits exactly this many packets and the
    /// run ends when the qdiscs drain. `None` = continuously backlogged
    /// until `wall_limit`.
    pub pkts_per_flow: Option<u64>,
    /// Hard wall-clock bound on the run. For timed runs this *is* the
    /// duration; for finite workloads it is a safety net (the report's
    /// [`ThreadedReport::timed_out`] flags it firing).
    pub wall_limit: WallNanos,
    /// Capacity of each data ring (completion rings match).
    pub ring_capacity: usize,
}

impl ThreadedConfig {
    /// A timed run: flows stay backlogged, the run stops at `wall_limit`.
    pub fn timed(shards: usize, host: HostConfig, wall_limit: WallNanos) -> Self {
        ThreadedConfig {
            shards,
            host,
            flow_cap: None,
            pkts_per_flow: None,
            wall_limit,
            ring_capacity: 4_096,
        }
    }

    /// A finite run: every flow emits exactly `pkts_per_flow` packets, the
    /// run ends by draining. The wall limit is a generous multiple of the
    /// ideal pacing schedule so a healthy run never hits it.
    pub fn finite(shards: usize, host: HostConfig, pkts_per_flow: u64) -> Self {
        let per_flow_bps = (host.aggregate.as_bps() / host.flows.max(1) as u64).max(1);
        let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps;
        let ideal = pacing_gap * (pkts_per_flow + host.tsq_budget as u64 + 2);
        ThreadedConfig {
            shards,
            host,
            flow_cap: None,
            pkts_per_flow: Some(pkts_per_flow),
            wall_limit: WallNanos(ideal.saturating_mul(4) + 2 * SECOND),
            ring_capacity: 4_096,
        }
    }
}

/// The merged result of a threaded run. Mirrors
/// [`crate::sharded::ShardedReport`], except every rate and duration here
/// is **wall-clock** ([`WallNanos`]), not virtual.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Qdisc name (all shards run the same discipline).
    pub name: &'static str,
    /// Per-thread slices (the `achieved_bps` inside is over wall time).
    pub per_shard: Vec<ShardStats>,
    /// Total packets released.
    pub transmitted: u64,
    /// Total packets pushed into shard rings by the producer.
    pub emitted: u64,
    /// Aggregate achieved rate in bits per **wall** second.
    pub achieved_bps: f64,
    /// Arrivals dropped at the flow cap (producer-side decision).
    pub dropped: u64,
    /// Timer fires across all shard threads.
    pub timer_fires: u64,
    /// Sum of per-shard median busy cores: wall nanoseconds of executed
    /// scheduler code (plus the same modelled IRQ/lock constants as the
    /// simulated host) per wall-time bin. On a machine with fewer physical
    /// cores than shards the *threads* time-slice, but this metric counts
    /// busy time, so it still measures the CPU a real multi-core host
    /// would spend.
    pub total_median_cores: f64,
    /// Whole-machine per-bin `(system, softirq)` cores: the per-shard
    /// [`CpuMeter`] bins summed element-wise (shards share the bin width
    /// and the wall-time axis), trimmed to the bins the run actually
    /// reached. The wall-clock counterpart of
    /// [`HostReport::breakdown`](crate::HostReport) (Figure 10 panels).
    pub breakdown: Vec<(f64, f64)>,
    /// Sum of per-shard peak backlogs (an upper bound on the true
    /// simultaneous peak — shards peak at different instants).
    pub peak_backlog: usize,
    /// Wall time from spawn to the last shard joining.
    pub wall_elapsed: WallNanos,
    /// Times the producer found a data ring full (a backpressure signal,
    /// not an error — pushes retry until they land).
    pub ring_full_retries: u64,
    /// A finite workload hit [`ThreadedConfig::wall_limit`] before
    /// draining — the counters below are then truncated, not complete.
    pub timed_out: bool,
}

/// Packet-level record of a threaded run.
///
/// `releases` concatenates the per-shard release logs; a flow lives on
/// exactly one shard, so **per-flow projections are in true release
/// order** even though cross-shard interleaving is lost. Times are wall
/// nanoseconds since run start.
#[derive(Debug, Clone, Default)]
pub struct ThreadedTrace {
    /// `(wall release time, flow, packet id, bytes)` per released packet.
    pub releases: Vec<(WallNanos, FlowId, u64, u32)>,
    /// `(wall drop time, flow, per-flow arrival index)` per cap drop.
    pub drops: Vec<(WallNanos, FlowId, u64)>,
}

impl ThreadedTrace {
    /// One flow's released packet ids, in release order.
    pub fn flow_release_ids(&self, flow: FlowId) -> Vec<u64> {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(_, _, id, _)| id)
            .collect()
    }

    /// One flow's released `(wall time, bytes)`, in release order.
    pub fn flow_releases(&self, flow: FlowId) -> Vec<(WallNanos, u32)> {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(t, _, _, b)| (t, b))
            .collect()
    }

    /// One flow's released byte total.
    pub fn flow_bytes(&self, flow: FlowId) -> u64 {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(_, _, _, b)| b as u64)
            .sum()
    }

    /// One flow's drop count.
    pub fn flow_drop_count(&self, flow: FlowId) -> u64 {
        self.drops.iter().filter(|(_, f, _)| *f == flow).count() as u64
    }
}

/// Runs the threaded host, returning the merged report.
///
/// `mk` builds shard `i`'s qdisc on the *calling* thread; the instance is
/// then moved to its shard thread (hence `Q: Send` — no sharing, just a
/// move).
pub fn run_threaded<Q: ShaperQdisc + Send>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
) -> ThreadedReport {
    run_inner(mk, cfg, false).0
}

/// [`run_threaded`] plus the packet-level [`ThreadedTrace`] — the ordering
/// and equivalence suites' entry point.
pub fn run_threaded_traced<Q: ShaperQdisc + Send>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
) -> (ThreadedReport, ThreadedTrace) {
    run_inner(mk, cfg, true)
}

/// What one shard thread hands back at join.
struct ShardOutcome<Q> {
    shard: Shard<Q>,
    releases: Vec<(WallNanos, FlowId, u64, u32)>,
    /// Wall time at this shard's exit (its rate denominator).
    final_now: Nanos,
}

fn run_inner<Q: ShaperQdisc + Send>(
    mut mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
    want_trace: bool,
) -> (ThreadedReport, ThreadedTrace) {
    let n = cfg.shards.max(1);
    let host = &cfg.host;
    assert!(host.flows > 0, "threaded host needs at least one flow");
    let per_flow_bps = (host.aggregate.as_bps() / host.flows as u64).max(1);
    let batch = host.batch.max(1);
    let ring_cap = cfg.ring_capacity.max(1);

    // Plumbing: three SPSC rings per shard.
    let mut data_tx = Vec::with_capacity(n);
    let mut data_rx = Vec::with_capacity(n);
    let mut ctrl_tx = Vec::with_capacity(n);
    let mut ctrl_rx = Vec::with_capacity(n);
    let mut comp_tx = Vec::with_capacity(n);
    let mut comp_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = SpscRing::<Packet>::new(ring_cap);
        data_tx.push(tx);
        data_rx.push(rx);
        let (tx, rx) = SpscRing::<CtrlMsg>::new(4);
        ctrl_tx.push(tx);
        ctrl_rx.push(rx);
        let (tx, rx) = SpscRing::<FlowId>::new(ring_cap);
        comp_tx.push(tx);
        comp_rx.push(rx);
    }
    let counters: Vec<ShardCounters> = (0..n).map(|_| ShardCounters::new()).collect();

    // Qdiscs are built on this thread (mk may capture state), then moved.
    let mut shards_init: Vec<Shard<Q>> = (0..n)
        .map(|i| {
            Shard::new(
                mk(i),
                CpuMeter::new(host.bin, cfg.wall_limit.as_nanos().max(host.bin)),
            )
        })
        .collect();
    let home: Vec<u32> = (0..host.flows as u32)
        .map(|f| shard_of(f, n) as u32)
        .collect();
    for &h in &home {
        shards_init[h as usize].flows += 1;
    }

    let start = Instant::now();
    let mut outcomes: Vec<ShardOutcome<Q>> = Vec::with_capacity(n);
    let mut producer_out = ProducerOutcome::default();

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        // `.rev()` + pop keeps ring endpoints aligned with shard ids.
        for (i, shard) in shards_init.into_iter().enumerate().rev() {
            let data = data_rx.pop().expect("one data ring per shard");
            let ctrl = ctrl_rx.pop().expect("one ctrl ring per shard");
            let comp = comp_tx.pop().expect("one completion ring per shard");
            let stats = &counters[i];
            handles.push(s.spawn(move || {
                shard_worker(
                    shard,
                    data,
                    ctrl,
                    comp,
                    stats,
                    start,
                    per_flow_bps,
                    batch,
                    want_trace,
                )
            }));
        }
        handles.reverse(); // spawned in reverse; report in shard order

        producer_out = producer_loop(
            cfg,
            &home,
            per_flow_bps,
            start,
            &mut data_tx,
            &mut ctrl_tx,
            &mut comp_rx,
            want_trace,
        );

        // Shards may still be draining (or blocked pushing completions):
        // keep the completion rings moving until every thread exits.
        while handles.iter().any(|h| !h.is_finished()) {
            for rx in comp_rx.iter_mut() {
                while rx.pop().is_some() {}
            }
            std::thread::yield_now();
        }
        for h in handles {
            outcomes.push(h.join().expect("shard thread panicked"));
        }
    });
    let wall_elapsed = WallNanos::from_duration(start.elapsed());

    // Exact totals from the joined shards; the counter blocks only served
    // live readers during the run.
    let name = outcomes[0].shard.qdisc.name();
    let per_shard: Vec<ShardStats> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let secs = WallNanos(o.final_now).as_secs_f64().max(1e-9);
            ShardStats {
                flows: o.shard.flows,
                transmitted: o.shard.transmitted,
                achieved_bps: o.shard.tx_bytes as f64 * 8.0 / secs,
                dropped: producer_out.dropped_per_shard[i],
                timer_fires: o.shard.timer_fires,
                median_cores: o.shard.meter.median_cores(),
                peak_backlog: o.shard.peak_backlog,
            }
        })
        .collect();
    // Whole-machine breakdown: shard meters share the bin geometry, so
    // summing bin `i` across shards gives total cores busy in wall
    // window `i`. Trim to the windows the run reached — the meters are
    // sized for `wall_limit`, and a run that drained early would
    // otherwise pad the CDF with empty bins.
    let used_bins = (wall_elapsed.as_nanos().div_ceil(host.bin) as usize).max(1);
    let mut breakdown: Vec<(f64, f64)> = Vec::new();
    for o in &outcomes {
        let bins = o.shard.meter.cores_per_bin();
        breakdown.resize(bins.len().min(used_bins).max(breakdown.len()), (0.0, 0.0));
        for (acc, (s, irq)) in breakdown.iter_mut().zip(bins) {
            acc.0 += s;
            acc.1 += irq;
        }
    }
    let report = ThreadedReport {
        name,
        transmitted: per_shard.iter().map(|s| s.transmitted).sum(),
        emitted: producer_out.emitted,
        achieved_bps: {
            let bytes: u64 = outcomes.iter().map(|o| o.shard.tx_bytes).sum();
            bytes as f64 * 8.0 / wall_elapsed.as_secs_f64().max(1e-9)
        },
        dropped: per_shard.iter().map(|s| s.dropped).sum(),
        timer_fires: per_shard.iter().map(|s| s.timer_fires).sum(),
        total_median_cores: per_shard.iter().map(|s| s.median_cores).sum(),
        breakdown,
        peak_backlog: per_shard.iter().map(|s| s.peak_backlog).sum(),
        wall_elapsed,
        ring_full_retries: producer_out.ring_full_retries,
        timed_out: producer_out.timed_out,
        per_shard,
    };
    let trace = ThreadedTrace {
        releases: outcomes.into_iter().flat_map(|o| o.releases).collect(),
        drops: producer_out.drops,
    };
    (report, trace)
}

/// One shard thread: poll the rings and the wall clock, run the shared
/// pipeline stages. No locks; the only blocking is pushing completions
/// into a full ring (spin-then-yield — the producer always drains it).
#[allow(clippy::too_many_arguments)]
fn shard_worker<Q: ShaperQdisc>(
    mut shard: Shard<Q>,
    mut data: SpscConsumer<Packet>,
    mut ctrl: SpscConsumer<CtrlMsg>,
    mut comp: SpscProducer<FlowId>,
    stats: &ShardCounters,
    start: Instant,
    per_flow_bps: u64,
    batch: usize,
    want_trace: bool,
) -> ShardOutcome<Q> {
    const INGRESS_BURST: usize = 64;
    let mut releases = Vec::new();
    let mut drained: Vec<Packet> = Vec::with_capacity(batch.max(1));
    let mut enqueued = 0u64;
    let mut draining = false;
    let mut idle = 0u32;
    let final_now;
    loop {
        let now = start.elapsed().as_nanos() as Nanos;
        match ctrl.pop() {
            Some(CtrlMsg::Shutdown { drain: false }) => {
                final_now = now;
                break;
            }
            Some(CtrlMsg::Shutdown { drain: true }) => draining = true,
            None => {}
        }
        let mut worked = false;

        // Ingress: a burst of arrivals from the data ring.
        for _ in 0..INGRESS_BURST {
            let Some(pkt) = data.pop() else { break };
            shard.ingress(now, pkt, per_flow_bps);
            shard.tighten_timer(now);
            enqueued += 1;
            worked = true;
        }
        if worked {
            stats.set(C_ENQUEUED, enqueued);
        }

        // Softirq: fire when the armed deadline has passed on the wall
        // clock — the poll-side version of the event heap delivering it.
        if shard.timer_due(now) {
            shard.softirq(now, batch, &mut drained);
            for p in drained.drain(..) {
                if want_trace {
                    releases.push((WallNanos(now), p.flow, p.id, p.bytes));
                }
                let mut flow = p.flow;
                loop {
                    match comp.push(flow) {
                        Ok(()) => break,
                        Err(f) => {
                            flow = f;
                            std::thread::yield_now();
                        }
                    }
                }
            }
            shard.rearm(now);
            stats.set(C_TRANSMITTED, shard.transmitted);
            stats.set(C_TX_BYTES, shard.tx_bytes);
            stats.set(C_TIMER_FIRES, shard.timer_fires);
            worked = true;
        }

        if draining && data.is_empty() && shard.qdisc.is_empty() {
            final_now = now;
            break;
        }
        if worked {
            idle = 0;
        } else {
            idle += 1;
            if idle % 64 == 0 {
                // Busy-poll, but share the core: on machines with fewer
                // cores than shards the other threads need the timeslice.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    stats.set(C_TRANSMITTED, shard.transmitted);
    stats.set(C_TX_BYTES, shard.tx_bytes);
    stats.set(C_TIMER_FIRES, shard.timer_fires);
    stats.set(C_ENQUEUED, enqueued);
    ShardOutcome {
        shard,
        releases,
        final_now,
    }
}

/// What the producer loop hands back.
#[derive(Debug, Default)]
struct ProducerOutcome {
    emitted: u64,
    ring_full_retries: u64,
    timed_out: bool,
    dropped_per_shard: Vec<u64>,
    drops: Vec<(WallNanos, FlowId, u64)>,
}

/// Per-flow producer state (the application + TCP-stack model).
struct FlowState {
    budget: u32,
    inflight: u32,
    sent: u64,
    arrivals: u64,
    /// Already sitting in the ready queue (dedup so the deque stays
    /// bounded by the flow count).
    queued: bool,
}

/// The producer/demux thread body (runs on the caller's thread while the
/// shard threads live in the scope).
#[allow(clippy::too_many_arguments)]
fn producer_loop(
    cfg: &ThreadedConfig,
    home: &[u32],
    per_flow_bps: u64,
    start: Instant,
    data_tx: &mut [SpscProducer<Packet>],
    ctrl_tx: &mut [SpscProducer<CtrlMsg>],
    comp_rx: &mut [SpscConsumer<FlowId>],
    want_trace: bool,
) -> ProducerOutcome {
    const EMIT_BURST: usize = 256;
    let host = &cfg.host;
    let flows = host.flows;
    let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps;
    let limit = cfg.pkts_per_flow.unwrap_or(u64::MAX);
    let finite = cfg.pkts_per_flow.is_some();
    let flow_cap = cfg.flow_cap.map(|c| c.max(1));
    let wall_limit = cfg.wall_limit.as_nanos();

    let mut out = ProducerOutcome {
        dropped_per_shard: vec![0; data_tx.len()],
        ..ProducerOutcome::default()
    };
    let mut fs: Vec<FlowState> = (0..flows)
        .map(|_| FlowState {
            budget: host.tsq_budget.max(1),
            inflight: 0,
            sent: 0,
            arrivals: 0,
            queued: false,
        })
        .collect();
    let mut ready: VecDeque<FlowId> = VecDeque::with_capacity(flows);
    // Cap-dropped flows retry one pacing gap later, as in the simulation.
    let mut retries: BinaryHeap<Reverse<(Nanos, FlowId)>> = BinaryHeap::new();
    let mut started = 0usize; // flows staggered in over one pacing gap
    let mut flows_done = 0usize;
    let mut next_pkt_id = 0u64;

    loop {
        let now = start.elapsed().as_nanos() as Nanos;
        let mut worked = false;

        // TSQ completions: return budget, wake throttled flows.
        for rx in comp_rx.iter_mut() {
            while let Some(flow) = rx.pop() {
                let f = &mut fs[flow as usize];
                f.inflight -= 1;
                f.budget += 1;
                if !f.queued && f.sent < limit {
                    f.queued = true;
                    ready.push_back(flow);
                }
                worked = true;
            }
        }

        // Stagger flow start-up across one pacing gap (same schedule as
        // the simulated host: depends only on id and total flow count).
        while started < flows && now >= pacing_gap * started as u64 / flows as u64 {
            let flow = started as FlowId;
            if !fs[started].queued {
                fs[started].queued = true;
                ready.push_back(flow);
            }
            started += 1;
            worked = true;
        }

        // Due retries from earlier cap drops.
        while let Some(&Reverse((at, flow))) = retries.peek() {
            if at > now {
                break;
            }
            retries.pop();
            let f = &mut fs[flow as usize];
            if !f.queued {
                f.queued = true;
                ready.push_back(flow);
            }
            worked = true;
        }

        // Emit a burst of arrivals.
        for _ in 0..EMIT_BURST {
            let Some(flow) = ready.pop_front() else { break };
            let i = flow as usize;
            fs[i].queued = false;
            if fs[i].budget == 0 || fs[i].sent >= limit {
                continue; // throttled (a completion requeues) or done
            }
            fs[i].arrivals += 1;
            let s = home[i] as usize;
            if flow_cap.is_some_and(|cap| fs[i].inflight >= cap) {
                out.dropped_per_shard[s] += 1;
                if want_trace {
                    out.drops.push((WallNanos(now), flow, fs[i].arrivals - 1));
                }
                retries.push(Reverse((now + pacing_gap.max(1), flow)));
                continue;
            }
            fs[i].budget -= 1;
            fs[i].inflight += 1;
            fs[i].sent += 1;
            if finite && fs[i].sent == limit {
                flows_done += 1;
            }
            let mut pkt = Packet::mtu(next_pkt_id, flow, now);
            next_pkt_id += 1;
            // Push, never deadlock: while the target ring is full, keep
            // the completion rings moving (the shard may be blocked on
            // exactly that) and yield the core.
            loop {
                match data_tx[s].push(pkt) {
                    Ok(()) => break,
                    Err(back) => {
                        pkt = back;
                        out.ring_full_retries += 1;
                        for rx in comp_rx.iter_mut() {
                            while let Some(done) = rx.pop() {
                                let f = &mut fs[done as usize];
                                f.inflight -= 1;
                                f.budget += 1;
                                if !f.queued && f.sent < limit {
                                    f.queued = true;
                                    ready.push_back(done);
                                }
                            }
                        }
                        std::thread::yield_now();
                    }
                }
            }
            out.emitted += 1;
            if fs[i].budget > 0 && fs[i].sent < limit {
                // Bulk sender: back-to-back until TSQ throttles.
                fs[i].queued = true;
                ready.push_back(flow);
            }
            worked = true;
        }

        // Termination.
        if finite && flows_done == flows {
            for tx in ctrl_tx.iter_mut() {
                let _ = tx.push(CtrlMsg::Shutdown { drain: true });
            }
            break;
        }
        if now >= wall_limit {
            out.timed_out = finite; // normal end for timed runs
            for tx in ctrl_tx.iter_mut() {
                let _ = tx.push(CtrlMsg::Shutdown { drain: false });
            }
            break;
        }
        if !worked {
            std::thread::yield_now();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eiffel::EiffelQdisc;
    use eiffel_sim::Rate;

    fn tiny_host(flows: usize) -> HostConfig {
        HostConfig {
            flows,
            aggregate: Rate::mbps(60 * flows as u64), // 60 Mbps per flow
            duration: SECOND,                         // ignored by threaded runs
            bin: SECOND / 20,
            tsq_budget: 2,
            batch: 4,
        }
    }

    #[test]
    fn finite_run_delivers_every_packet_and_drains() {
        let cfg = ThreadedConfig::finite(2, tiny_host(8), 5);
        let (r, tr) = run_threaded_traced(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out, "drain run hit the wall limit");
        assert_eq!(r.emitted, 8 * 5);
        assert_eq!(r.transmitted, 8 * 5, "everything emitted must release");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.per_shard.len(), 2);
        let homed: usize = r.per_shard.iter().map(|s| s.flows).sum();
        assert_eq!(homed, 8);
        for flow in 0..8u32 {
            assert_eq!(tr.flow_release_ids(flow).len(), 5, "flow {flow}");
        }
    }

    #[test]
    fn timed_run_reports_wall_rate_and_live_counters_converge() {
        let mut cfg = ThreadedConfig::timed(2, tiny_host(16), WallNanos::from_millis(40));
        cfg.host.batch = 8;
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(r.transmitted > 0, "a 40ms run must release packets");
        assert!(r.wall_elapsed >= WallNanos::from_millis(40));
        assert!(r.achieved_bps > 0.0);
        assert!(r.timer_fires > 0);
        assert!(!r.timed_out, "timed runs end at the limit by design");
    }

    #[test]
    fn flow_cap_drops_and_recovers_on_threads() {
        let mut cfg = ThreadedConfig::finite(3, tiny_host(6), 12);
        cfg.host.tsq_budget = 4;
        cfg.flow_cap = Some(1); // cap below budget ⇒ must bind sometimes
        let (r, tr) = run_threaded_traced(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out);
        // Every flow still completes its finite workload despite drops.
        assert_eq!(r.transmitted, 6 * 12);
        assert_eq!(r.dropped as usize, tr.drops.len());
    }
}
