//! The threaded multi-core host: one real OS thread per shard, lock-free
//! rings between them, wall-clock time.
//!
//! [`crate::sharded`] proved the N-shard host *semantically* equal to the
//! single-shard host — but under one virtual clock on one OS thread, which
//! cannot measure the paper's headline systems claim (§5.1, Fig 9: Eiffel
//! shapes 20k flows with ~1/20 the cores FQ needs). This module runs the
//! same shards as real threads:
//!
//! ```text
//!             data ring (SPSC, Packet)          ┌───────────────┐
//!        ┌──────────────────────────────────▶   │ shard thread 0 │──┐
//!        │    ctrl ring (SPSC, CtrlMsg)         │  qdisc + timer │  │
//! ┌──────┴─┐ ─────────────────────────────▶     │  + CpuMeter    │  │
//! │producer│                                    └───────────────┘  │
//! │ /demux │   ◀─────────────────────────────────────────────────  │
//! └──────┬─┘    completion ring (SPSC, FlowId)                     ▼
//!        │                                       CounterBlock (stats,
//!        └──▶ … shard thread N-1                 read without locks)
//! ```
//!
//! * The **producer/demux thread** plays the application + TCP stack: it
//!   paces flow start-up, enforces the TSQ budget, hashes each packet to
//!   its home shard with [`eiffel_sim::shard_of`], and pushes it into that
//!   shard's data ring ([`eiffel_core::ring::SpscRing`]).
//! * Each **shard thread** owns one qdisc instance and one softirq timer,
//!   and runs *the same stage code* (`Shard::ingress`, `Shard::softirq`,
//!   `Shard::tighten_timer`, `Shard::rearm`) that [`crate::sharded`]'s
//!   event loop drives under the virtual clock — the two runtimes share one
//!   body and cannot drift. The event axis here is the wall clock
//!   (nanoseconds since run start), polled instead of popped from a heap.
//! * **Completions** flow back over a second SPSC ring: one [`Completion`]
//!   per disposed packet, returning TSQ budget to the producer — the TSQ
//!   callback, as a message. The completion carries the packet's fate
//!   (delivered, delivered-with-ECN-mark, dropped), which is the feedback
//!   edge of the closed loop: ECN-reactive transports
//!   ([`eiffel_workloads::ClosedLoopSource`]) read it and pace themselves.
//! * The **control plane** is a third, cold ring: the producer sends
//!   [`CtrlMsg::Shutdown`] (drain for finite workloads, immediate for timed
//!   runs); config travels by value at spawn time.
//! * **Per-shard statistics** are single-writer counter blocks
//!   ([`eiffel_core::CounterBlock`]) the producer reads without locks while
//!   the run is live; exact totals come from joining the shard.
//!
//! There are **no locks anywhere on the per-packet path** — rings and
//! single-writer atomics only. Blocking is by spin-then-yield, and the
//! producer always drains completion rings while waiting on a full data
//! ring (and vice versa the shards only ever block pushing completions,
//! which the producer drains), so the pair cannot deadlock.
//!
//! Determinism: wall-clock runs cannot reproduce release *times*, so the
//! equivalence suite uses **finite workloads** ([`ThreadedConfig::finite`]):
//! every flow emits exactly `pkts_per_flow` packets and the run ends when
//! the qdiscs drain. The per-flow packet/byte/drop totals are then
//! time-free invariants, identical to a [`crate::sharded`] run of the same
//! workload — so the virtual-clock proptests keep guarding the threaded
//! path.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eiffel_chaos::{AdmitPolicy, ChaosConfig, ShardFaults};
use eiffel_core::ring::{SpscConsumer, SpscProducer, SpscRing};
use eiffel_core::{CounterBlock, DegradeTier, MemBudget, FLOW_SETUP_BYTES, PKT_SLAB_BYTES};
use eiffel_sim::{shard_of, CpuCategory, CpuMeter, FlowId, Nanos, Packet, WallNanos, SECOND};
use eiffel_workloads::{
    summarize_closed_loop, ClosedLoopParams, ClosedLoopSource, ClosedLoopSummary,
};

use crate::host::HostConfig;
use crate::qdisc::ShaperQdisc;
use crate::sharded::{backoff_jitter, IngressVerdict, Shard, ShardStats};

/// Counter slots published by each shard thread (single writer each).
const C_TRANSMITTED: usize = 0;
const C_TX_BYTES: usize = 1;
const C_TIMER_FIRES: usize = 2;
const C_ENQUEUED: usize = 3;
/// Wall nanoseconds (since run start) of the shard's last live loop
/// iteration — frozen while the shard is stalled; the watchdog reads it.
const C_HEARTBEAT: usize = 4;
/// Packets this shard has disposed of (transmitted + admission-dropped +
/// evicted) — each one owes the producer exactly one completion. Written
/// *after* the completion push (release-fenced) so the producer's
/// reconciliation can only under-estimate losses, never over-estimate.
const C_DISPOSED: usize = 5;
/// One shard's live statistics block.
type ShardCounters = CounterBlock<6>;

/// What happened to one disposed packet, echoed to the producer on the
/// completion ring. This is the only feedback channel a source has — on
/// real hardware it is the ACK (with its ECE bit) coming back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Transmitted, no congestion signal.
    Delivered,
    /// Transmitted with the ECN congestion-experienced mark set by
    /// admission — the signal closed-loop transports react to.
    DeliveredMarked,
    /// Refused by admission or evicted to make room: the skb is freed (so
    /// the TSQ budget returns) and the transport sees a loss.
    Dropped,
}

/// One completion-ring message: which flow, and what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The flow whose packet was disposed.
    pub flow: FlowId,
    /// Its fate.
    pub kind: CompletionKind,
}

/// Control-plane messages (cold path; one per run today).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Stop the shard. With `drain`, finish everything already queued
    /// (ring + qdisc) first; without, stop at the next loop iteration
    /// (timed runs, where lingering packets are expected).
    Shutdown {
        /// Whether to empty the data ring and qdisc before exiting.
        drain: bool,
    },
}

/// Parameters of a threaded run.
///
/// Reuses [`HostConfig`] for the workload shape (`flows`, `aggregate`,
/// `tsq_budget`, `batch`, `bin`), with one deliberate difference:
/// **`host.duration` is ignored** — a threaded run is bounded by
/// [`wall_limit`](Self::wall_limit) real nanoseconds (and, for finite
/// workloads, usually ends earlier by draining).
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// OS threads / qdisc instances. Flows are split by
    /// [`eiffel_sim::shard_of`], exactly as in the simulated host.
    pub shards: usize,
    /// Workload shape (see type-level docs: `duration` is ignored).
    pub host: HostConfig,
    /// Per-flow in-qdisc packet cap, as in
    /// [`crate::sharded::ShardedConfig::flow_cap`]. Note drop *counts* under
    /// a cap are scheduling-dependent on real threads (a completion may or
    /// may not beat the retry), so the equivalence suite leaves this off.
    pub flow_cap: Option<u32>,
    /// Finite workload: each flow emits exactly this many packets and the
    /// run ends when the qdiscs drain. `None` = continuously backlogged
    /// until `wall_limit`.
    pub pkts_per_flow: Option<u64>,
    /// Hard wall-clock bound on the run. For timed runs this *is* the
    /// duration; for finite workloads it is a safety net (the report's
    /// [`ThreadedReport::timed_out`] flags it firing).
    pub wall_limit: WallNanos,
    /// Capacity of each data ring (completion rings match).
    pub ring_capacity: usize,
    /// Per-flow packet-count overrides (heavy-tailed workloads), as in
    /// [`crate::sharded::ShardedConfig::pkts_override`]. Any override makes
    /// the run finite.
    pub pkts_override: Option<Vec<u64>>,
    /// Per-flow first-emission wall times (incast waves). Must be
    /// nondecreasing in flow id — the producer starts flows by walking the
    /// schedule in order. `None` = smooth stagger over one pacing gap.
    pub starts: Option<Vec<Nanos>>,
    /// Fault plan, admission policy, and watchdog. The default is a no-op.
    pub chaos: ChaosConfig,
    /// ECN-reactive closed-loop sources: each flow runs a DCTCP-style
    /// estimator over the mark fraction echoed on its completions and
    /// paces its own emissions. `None` = the historical open loop (bulk
    /// senders gated only by TSQ).
    pub closed_loop: Option<ClosedLoopParams>,
    /// Memory-budget accountant shared by the producer (flow setup and
    /// per-packet slab charges) and the shard threads (tier lookups and
    /// slab releases). `None` = unbounded, the historical behavior.
    pub mem: Option<Arc<MemBudget>>,
    /// Source-side emission gap, decoupled from the shard-side shaping
    /// rate (which stays `host.aggregate / host.flows`). Mirrors
    /// [`crate::sharded::ShardedConfig::offered_gap`]: a gap smaller than
    /// the shaped per-flow gap means sustained overload of a
    /// fixed-capacity drain. Applies to the flow-start stagger and to
    /// closed-loop pacing (open-loop senders are TSQ-gated bulk emitters
    /// either way). `None` = offered rate equals the shaped rate.
    pub offered_gap: Option<Nanos>,
}

impl ThreadedConfig {
    /// A timed run: flows stay backlogged, the run stops at `wall_limit`.
    pub fn timed(shards: usize, host: HostConfig, wall_limit: WallNanos) -> Self {
        ThreadedConfig {
            shards,
            host,
            flow_cap: None,
            pkts_per_flow: None,
            wall_limit,
            ring_capacity: 4_096,
            pkts_override: None,
            starts: None,
            chaos: ChaosConfig::default(),
            closed_loop: None,
            mem: None,
            offered_gap: None,
        }
    }

    /// A finite run: every flow emits exactly `pkts_per_flow` packets, the
    /// run ends by draining. The wall limit is a generous multiple of the
    /// ideal pacing schedule so a healthy run never hits it.
    pub fn finite(shards: usize, host: HostConfig, pkts_per_flow: u64) -> Self {
        let per_flow_bps = (host.aggregate.as_bps() / host.flows.max(1) as u64).max(1);
        let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps;
        let ideal = pacing_gap * (pkts_per_flow + host.tsq_budget as u64 + 2);
        ThreadedConfig {
            shards,
            host,
            flow_cap: None,
            pkts_per_flow: Some(pkts_per_flow),
            wall_limit: WallNanos(ideal.saturating_mul(4) + 2 * SECOND),
            ring_capacity: 4_096,
            pkts_override: None,
            starts: None,
            chaos: ChaosConfig::default(),
            closed_loop: None,
            mem: None,
            offered_gap: None,
        }
    }
}

/// Fault-handling outcome of a threaded run — all zeros for a no-op
/// [`ChaosConfig`].
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Arrivals refused by the admission policy at the qdiscs.
    pub admission_dropped: u64,
    /// Arrivals admitted but ECN-marked.
    pub ecn_marked: u64,
    /// Resident packets evicted by priority-drop admission.
    pub evicted: u64,
    /// Completions the fault plan dropped on the completion rings.
    pub completions_lost: u64,
    /// Leaked TSQ budgets the watchdog's reconciliation refunded. Catches
    /// up to `completions_lost` one watchdog tick later (losses in the
    /// final tick of a run can stay unrecovered — honestly reported here).
    pub completions_recovered: u64,
    /// Packets steered away from a watchdog-suspect shard to a live one.
    /// Failover trades per-flow ordering for liveness while it lasts.
    pub redirected: u64,
    /// Shard-stall detections (heartbeat older than `stall_after`).
    pub stalls_detected: u64,
    /// Suspect shards whose heartbeat came back.
    pub recoveries: u64,
    /// Packets left in data rings at shutdown (timed runs end mid-flight;
    /// a drained finite run reports 0).
    pub ring_residue: u64,
    /// Conservation check: `emitted − (transmitted + admission_dropped +
    /// evicted + qdisc residue + ring residue)` at join. **Always 0** —
    /// every emitted packet is accounted for at every fault intensity;
    /// debug builds assert it.
    pub final_unaccounted: i64,
}

/// The merged result of a threaded run. Mirrors
/// [`crate::sharded::ShardedReport`], except every rate and duration here
/// is **wall-clock** ([`WallNanos`]), not virtual.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Qdisc name (all shards run the same discipline).
    pub name: &'static str,
    /// Per-thread slices (the `achieved_bps` inside is over wall time).
    pub per_shard: Vec<ShardStats>,
    /// Total packets released.
    pub transmitted: u64,
    /// Total packets pushed into shard rings by the producer.
    pub emitted: u64,
    /// Aggregate achieved rate in bits per **wall** second.
    pub achieved_bps: f64,
    /// Arrivals dropped at the flow cap (producer-side decision).
    pub dropped: u64,
    /// Timer fires across all shard threads.
    pub timer_fires: u64,
    /// Sum of per-shard median busy cores: wall nanoseconds of executed
    /// scheduler code (plus the same modelled IRQ/lock constants as the
    /// simulated host) per wall-time bin. On a machine with fewer physical
    /// cores than shards the *threads* time-slice, but this metric counts
    /// busy time, so it still measures the CPU a real multi-core host
    /// would spend.
    pub total_median_cores: f64,
    /// Whole-machine per-bin `(system, softirq)` cores: the per-shard
    /// [`CpuMeter`] bins summed element-wise (shards share the bin width
    /// and the wall-time axis), trimmed to the bins the run actually
    /// reached. The wall-clock counterpart of
    /// [`HostReport::breakdown`](crate::HostReport) (Figure 10 panels).
    pub breakdown: Vec<(f64, f64)>,
    /// Sum of per-shard peak backlogs (an upper bound on the true
    /// simultaneous peak — shards peak at different instants).
    pub peak_backlog: usize,
    /// Wall time from spawn to the last shard joining.
    pub wall_elapsed: WallNanos,
    /// Times the producer found a data ring full (or squeezed below its
    /// occupancy by a fault) and deferred the emission with bounded
    /// backoff — a backpressure signal, not an error.
    pub ring_full_retries: u64,
    /// A finite workload hit [`ThreadedConfig::wall_limit`] before
    /// draining — the counters below are then truncated, not complete.
    pub timed_out: bool,
    /// Flow setups refused by the memory budget (refuse tier, or the
    /// setup charge itself failing) — refused flows park until the tier
    /// clears, then re-attempt (and are counted again if re-refused).
    pub setup_refused: u64,
    /// Emissions deferred because the per-packet slab charge found the
    /// budget exhausted (the bounded-memory guarantee biting).
    pub mem_deferrals: u64,
    /// Peak bytes ever charged against the memory budget (0 without one).
    /// Never exceeds the budget — `try_charge` refuses, by construction.
    pub mem_peak_bytes: u64,
    /// Closed-loop transport summary (`None` for open-loop runs).
    pub cl: Option<ClosedLoopSummary>,
    /// Fault-handling outcome (all zeros without a chaos plan).
    pub chaos: ChaosReport,
}

/// Packet-level record of a threaded run.
///
/// `releases` concatenates the per-shard release logs; a flow lives on
/// exactly one shard, so **per-flow projections are in true release
/// order** even though cross-shard interleaving is lost. Times are wall
/// nanoseconds since run start.
#[derive(Debug, Clone, Default)]
pub struct ThreadedTrace {
    /// `(wall release time, flow, packet id, bytes)` per released packet.
    pub releases: Vec<(WallNanos, FlowId, u64, u32)>,
    /// `(wall drop time, flow, per-flow arrival index)` per cap drop.
    pub drops: Vec<(WallNanos, FlowId, u64)>,
}

impl ThreadedTrace {
    /// One flow's released packet ids, in release order.
    pub fn flow_release_ids(&self, flow: FlowId) -> Vec<u64> {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(_, _, id, _)| id)
            .collect()
    }

    /// One flow's released `(wall time, bytes)`, in release order.
    pub fn flow_releases(&self, flow: FlowId) -> Vec<(WallNanos, u32)> {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(t, _, _, b)| (t, b))
            .collect()
    }

    /// One flow's released byte total.
    pub fn flow_bytes(&self, flow: FlowId) -> u64 {
        self.releases
            .iter()
            .filter(|(_, f, _, _)| *f == flow)
            .map(|&(_, _, _, b)| b as u64)
            .sum()
    }

    /// One flow's drop count.
    pub fn flow_drop_count(&self, flow: FlowId) -> u64 {
        self.drops.iter().filter(|(_, f, _)| *f == flow).count() as u64
    }
}

/// Runs the threaded host, returning the merged report.
///
/// `mk` builds shard `i`'s qdisc on the *calling* thread; the instance is
/// then moved to its shard thread (hence `Q: Send` — no sharing, just a
/// move).
pub fn run_threaded<Q: ShaperQdisc + Send>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
) -> ThreadedReport {
    run_inner(mk, cfg, false).0
}

/// [`run_threaded`] plus the packet-level [`ThreadedTrace`] — the ordering
/// and equivalence suites' entry point.
pub fn run_threaded_traced<Q: ShaperQdisc + Send>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
) -> (ThreadedReport, ThreadedTrace) {
    run_inner(mk, cfg, true)
}

/// What one shard thread hands back at join.
struct ShardOutcome<Q> {
    shard: Shard<Q>,
    releases: Vec<(WallNanos, FlowId, u64, u32)>,
    /// Wall time at this shard's exit (its rate denominator).
    final_now: Nanos,
    /// Packets still in the data ring at exit (timed runs only).
    ring_residue: u64,
    /// Completions the fault plan dropped at this shard.
    completions_lost: u64,
}

fn run_inner<Q: ShaperQdisc + Send>(
    mut mk: impl FnMut(usize) -> Q,
    cfg: &ThreadedConfig,
    want_trace: bool,
) -> (ThreadedReport, ThreadedTrace) {
    let n = cfg.shards.max(1);
    let host = &cfg.host;
    assert!(host.flows > 0, "threaded host needs at least one flow");
    let per_flow_bps = (host.aggregate.as_bps() / host.flows as u64).max(1);
    let batch = host.batch.max(1);
    let ring_cap = cfg.ring_capacity.max(1);

    // Plumbing: three SPSC rings per shard.
    let mut data_tx = Vec::with_capacity(n);
    let mut data_rx = Vec::with_capacity(n);
    let mut ctrl_tx = Vec::with_capacity(n);
    let mut ctrl_rx = Vec::with_capacity(n);
    let mut comp_tx = Vec::with_capacity(n);
    let mut comp_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = SpscRing::<Packet>::new(ring_cap);
        data_tx.push(tx);
        data_rx.push(rx);
        let (tx, rx) = SpscRing::<CtrlMsg>::new(4);
        ctrl_tx.push(tx);
        ctrl_rx.push(rx);
        let (tx, rx) = SpscRing::<Completion>::new(ring_cap);
        comp_tx.push(tx);
        comp_rx.push(rx);
    }
    let counters: Vec<ShardCounters> = (0..n).map(|_| ShardCounters::new()).collect();

    // Qdiscs are built on this thread (mk may capture state), then moved.
    let mut shards_init: Vec<Shard<Q>> = (0..n)
        .map(|i| {
            Shard::new(
                mk(i),
                CpuMeter::new(host.bin, cfg.wall_limit.as_nanos().max(host.bin)),
            )
        })
        .collect();
    let home: Vec<u32> = (0..host.flows as u32)
        .map(|f| shard_of(f, n) as u32)
        .collect();
    for &h in &home {
        shards_init[h as usize].flows += 1;
    }

    // Per-shard fault schedules, compiled once; workers get a clone, the
    // producer keeps the set (for ring squeezes and the watchdog).
    let faults: Vec<ShardFaults> = (0..n).map(|i| cfg.chaos.plan.compile(i)).collect();
    let admit = cfg.chaos.admit;

    // Per-flow producer state comes first: at the largest flow counts it
    // is a multi-hundred-MB allocation whose first-touch cost must not be
    // billed against the wall the shards and sources share.
    let mut pstate = ProducerState::build(cfg);

    let start = Instant::now();
    let mut outcomes: Vec<ShardOutcome<Q>> = Vec::with_capacity(n);
    let mut producer_out = ProducerOutcome::default();

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        // `.rev()` + pop keeps ring endpoints aligned with shard ids.
        for (i, shard) in shards_init.into_iter().enumerate().rev() {
            let data = data_rx.pop().expect("one data ring per shard");
            let ctrl = ctrl_rx.pop().expect("one ctrl ring per shard");
            let comp = comp_tx.pop().expect("one completion ring per shard");
            let stats = &counters[i];
            let shard_faults = faults[i].clone();
            let shard_mem = cfg.mem.clone();
            handles.push(s.spawn(move || {
                shard_worker(
                    shard,
                    data,
                    ctrl,
                    comp,
                    stats,
                    start,
                    per_flow_bps,
                    batch,
                    shard_faults,
                    admit,
                    shard_mem,
                    want_trace,
                )
            }));
        }
        handles.reverse(); // spawned in reverse; report in shard order

        producer_out = producer_loop(
            cfg,
            &mut pstate,
            &home,
            per_flow_bps,
            start,
            &mut data_tx,
            &mut ctrl_tx,
            &mut comp_rx,
            &counters,
            &faults,
            want_trace,
        );

        // Shards may still be draining (or blocked pushing completions):
        // keep the completion rings moving until every thread exits.
        while handles.iter().any(|h| !h.is_finished()) {
            for rx in comp_rx.iter_mut() {
                while rx.pop().is_some() {}
            }
            std::thread::yield_now();
        }
        for h in handles {
            outcomes.push(h.join().expect("shard thread panicked"));
        }
    });
    let wall_elapsed = WallNanos::from_duration(start.elapsed());

    // Exact totals from the joined shards; the counter blocks only served
    // live readers during the run.
    let name = outcomes[0].shard.qdisc.name();
    let per_shard: Vec<ShardStats> = outcomes
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let secs = WallNanos(o.final_now).as_secs_f64().max(1e-9);
            ShardStats {
                flows: o.shard.flows,
                transmitted: o.shard.transmitted,
                achieved_bps: o.shard.tx_bytes as f64 * 8.0 / secs,
                dropped: producer_out.dropped_per_shard[i],
                timer_fires: o.shard.timer_fires,
                median_cores: o.shard.meter.median_cores(),
                peak_backlog: o.shard.peak_backlog,
                admission_dropped: o.shard.admission_dropped,
                ecn_marked: o.shard.ecn_marked,
                evicted: o.shard.evicted,
                mean_latency_ns: if o.shard.transmitted > 0 {
                    o.shard.lat_sum_ns as f64 / o.shard.transmitted as f64
                } else {
                    0.0
                },
                max_latency_ns: o.shard.lat_max_ns,
                tiers: o.shard.tiers,
                sojourn: o.shard.sojourn.clone(),
            }
        })
        .collect();
    // Whole-machine breakdown: shard meters share the bin geometry, so
    // summing bin `i` across shards gives total cores busy in wall
    // window `i`. Trim to the windows the run reached — the meters are
    // sized for `wall_limit`, and a run that drained early would
    // otherwise pad the CDF with empty bins.
    let used_bins = (wall_elapsed.as_nanos().div_ceil(host.bin) as usize).max(1);
    let mut breakdown: Vec<(f64, f64)> = Vec::new();
    for o in &outcomes {
        let bins = o.shard.meter.cores_per_bin();
        breakdown.resize(bins.len().min(used_bins).max(breakdown.len()), (0.0, 0.0));
        for (acc, (s, irq)) in breakdown.iter_mut().zip(bins) {
            acc.0 += s;
            acc.1 += irq;
        }
    }
    // Exact conservation at join: the producer stopped before the shards
    // exited (the control push synchronizes the rings), so every emitted
    // packet is in exactly one bucket below.
    let disposed: u64 = outcomes
        .iter()
        .map(|o| o.shard.transmitted + o.shard.admission_dropped + o.shard.evicted)
        .sum();
    let qdisc_residue: u64 = outcomes.iter().map(|o| o.shard.qdisc.len() as u64).sum();
    let ring_residue: u64 = outcomes.iter().map(|o| o.ring_residue).sum();
    let chaos = ChaosReport {
        admission_dropped: outcomes.iter().map(|o| o.shard.admission_dropped).sum(),
        ecn_marked: outcomes.iter().map(|o| o.shard.ecn_marked).sum(),
        evicted: outcomes.iter().map(|o| o.shard.evicted).sum(),
        completions_lost: outcomes.iter().map(|o| o.completions_lost).sum(),
        completions_recovered: producer_out.completions_recovered,
        redirected: producer_out.redirected,
        stalls_detected: producer_out.stalls_detected,
        recoveries: producer_out.recoveries,
        ring_residue,
        final_unaccounted: producer_out.emitted as i64
            - (disposed + qdisc_residue + ring_residue) as i64,
    };
    debug_assert_eq!(
        chaos.final_unaccounted, 0,
        "threaded packet conservation violated"
    );
    let report = ThreadedReport {
        name,
        transmitted: per_shard.iter().map(|s| s.transmitted).sum(),
        emitted: producer_out.emitted,
        achieved_bps: {
            let bytes: u64 = outcomes.iter().map(|o| o.shard.tx_bytes).sum();
            bytes as f64 * 8.0 / wall_elapsed.as_secs_f64().max(1e-9)
        },
        dropped: per_shard.iter().map(|s| s.dropped).sum(),
        timer_fires: per_shard.iter().map(|s| s.timer_fires).sum(),
        total_median_cores: per_shard.iter().map(|s| s.median_cores).sum(),
        breakdown,
        peak_backlog: per_shard.iter().map(|s| s.peak_backlog).sum(),
        wall_elapsed,
        ring_full_retries: producer_out.ring_full_retries,
        timed_out: producer_out.timed_out,
        setup_refused: producer_out.setup_refused,
        mem_deferrals: producer_out.mem_deferrals,
        mem_peak_bytes: cfg.mem.as_ref().map_or(0, |m| m.peak()),
        cl: producer_out.cl.take(),
        chaos,
        per_shard,
    };
    let trace = ThreadedTrace {
        releases: outcomes.into_iter().flat_map(|o| o.releases).collect(),
        drops: producer_out.drops,
    };
    (report, trace)
}

/// One completion per disposed packet (transmitted, admission-dropped, or
/// evicted) — unless the fault plan loses it on the wire. The push blocks
/// spin-then-yield; the producer always drains completion rings.
fn send_completion(
    comp: &mut SpscProducer<Completion>,
    faults: &ShardFaults,
    now: Nanos,
    comp_seq: &mut u64,
    lost: &mut u64,
    c: Completion,
) {
    let seq = *comp_seq;
    *comp_seq += 1;
    if faults.lose_completion(now, seq) {
        *lost += 1;
        return;
    }
    let mut c = c;
    loop {
        match comp.push(c) {
            Ok(()) => break,
            Err(back) => {
                c = back;
                std::thread::yield_now();
            }
        }
    }
}

/// One shard thread: poll the rings and the wall clock, run the shared
/// pipeline stages. No locks; the only blocking is pushing completions
/// into a full ring (spin-then-yield — the producer always drains it).
#[allow(clippy::too_many_arguments)]
fn shard_worker<Q: ShaperQdisc>(
    mut shard: Shard<Q>,
    mut data: SpscConsumer<Packet>,
    mut ctrl: SpscConsumer<CtrlMsg>,
    mut comp: SpscProducer<Completion>,
    stats: &ShardCounters,
    start: Instant,
    per_flow_bps: u64,
    batch: usize,
    faults: ShardFaults,
    admit: AdmitPolicy,
    mem: Option<Arc<MemBudget>>,
    want_trace: bool,
) -> ShardOutcome<Q> {
    const INGRESS_BURST: usize = 64;
    let mut releases = Vec::new();
    let mut drained: Vec<Packet> = Vec::with_capacity(batch.max(1));
    let mut enqueued = 0u64;
    let mut draining = false;
    let mut idle = 0u32;
    // Jitter of the currently armed timer fire (keyed on the epoch so the
    // virtual-clock runtime draws the identical delay).
    let mut jitter: Nanos = 0;
    let mut comp_seq = 0u64;
    let mut completions_lost = 0u64;
    let final_now;
    loop {
        let now = start.elapsed().as_nanos() as Nanos;
        match ctrl.pop() {
            Some(CtrlMsg::Shutdown { drain: false }) => {
                final_now = now;
                break;
            }
            Some(CtrlMsg::Shutdown { drain: true }) => draining = true,
            None => {}
        }
        if faults.stalled(now) {
            // Paused core: no heartbeat, no ingress, no softirq — the
            // watchdog sees the heartbeat freeze while producers fill this
            // shard's ring. Sleep in short slices so the control plane
            // stays responsive.
            let until = faults.stall_until(now).expect("stalled => end");
            let remaining = until.saturating_sub(now);
            std::thread::sleep(Duration::from_nanos(remaining.min(100_000)));
            continue;
        }
        stats.set(C_HEARTBEAT, now);
        let mut worked = false;

        // Ingress: a burst of arrivals from the data ring, each through
        // admission (tightened by the memory budget's current degradation
        // tier). Refused arrivals and evicted victims owe the producer a
        // completion too — the kernel frees the skb either way — and every
        // disposal returns its slab charge to the budget.
        for _ in 0..INGRESS_BURST {
            let Some(pkt) = data.pop() else { break };
            let flow = pkt.flow;
            let tier = mem.as_deref().map_or(DegradeTier::Normal, |m| m.tier());
            match shard.ingress(now, pkt, per_flow_bps, &admit, tier) {
                IngressVerdict::Queued | IngressVerdict::Marked => {}
                IngressVerdict::DroppedArrival => {
                    if let Some(m) = mem.as_deref() {
                        m.release(PKT_SLAB_BYTES);
                    }
                    send_completion(
                        &mut comp,
                        &faults,
                        now,
                        &mut comp_seq,
                        &mut completions_lost,
                        Completion {
                            flow,
                            kind: CompletionKind::Dropped,
                        },
                    )
                }
                IngressVerdict::Evicted(victim) => {
                    if let Some(m) = mem.as_deref() {
                        m.release(PKT_SLAB_BYTES);
                    }
                    send_completion(
                        &mut comp,
                        &faults,
                        now,
                        &mut comp_seq,
                        &mut completions_lost,
                        Completion {
                            flow: victim.flow,
                            kind: CompletionKind::Dropped,
                        },
                    )
                }
            }
            if let Some(want) = shard.tighten_timer(now) {
                jitter = faults.timer_extra_delay(want, shard.timer_epoch());
            }
            enqueued += 1;
            worked = true;
        }
        if worked {
            stats.set(C_ENQUEUED, enqueued);
            publish_disposed(stats, &shard);
        }

        // Softirq: fire when the armed deadline (plus any injected timer
        // jitter) has passed on the wall clock — the poll-side version of
        // the event heap delivering it.
        if shard.timer_due(now.saturating_sub(jitter)) {
            shard.softirq(now, batch, &mut drained);
            let penalty = faults.consumer_penalty_ns(now);
            if penalty > 0 && !drained.is_empty() {
                // Slow consumer: burn the extra per-packet wall time in
                // softirq context (metered like any real drain work).
                let extra = penalty.saturating_mul(drained.len() as u64);
                let t0 = Instant::now();
                shard.meter.measure(now, CpuCategory::SoftIrq, || {
                    while (t0.elapsed().as_nanos() as u64) < extra {
                        std::hint::spin_loop();
                    }
                });
            }
            for p in drained.drain(..) {
                if want_trace {
                    releases.push((WallNanos(now), p.flow, p.id, p.bytes));
                }
                if let Some(m) = mem.as_deref() {
                    m.release(PKT_SLAB_BYTES);
                }
                send_completion(
                    &mut comp,
                    &faults,
                    now,
                    &mut comp_seq,
                    &mut completions_lost,
                    Completion {
                        flow: p.flow,
                        kind: if p.ecn {
                            CompletionKind::DeliveredMarked
                        } else {
                            CompletionKind::Delivered
                        },
                    },
                );
            }
            if let Some(want) = shard.rearm(now) {
                jitter = faults.timer_extra_delay(want, shard.timer_epoch());
            }
            publish_disposed(stats, &shard);
            stats.set(C_TRANSMITTED, shard.transmitted);
            stats.set(C_TX_BYTES, shard.tx_bytes);
            stats.set(C_TIMER_FIRES, shard.timer_fires);
            worked = true;
        }

        if draining && data.is_empty() && shard.qdisc.is_empty() {
            final_now = now;
            break;
        }
        if worked {
            idle = 0;
        } else {
            idle += 1;
            if idle % 64 == 0 {
                // Busy-poll, but share the core: on machines with fewer
                // cores than shards the other threads need the timeslice.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
    // Timed runs exit with packets still in flight: count the ring residue
    // so the join-time conservation check balances exactly. (The producer
    // exited before sending Shutdown, and its control push synchronizes
    // the data ring, so everything it emitted is visible here.)
    let mut ring_residue = 0u64;
    while data.pop().is_some() {
        ring_residue += 1;
        if let Some(m) = mem.as_deref() {
            m.release(PKT_SLAB_BYTES);
        }
    }
    if let Some(m) = mem.as_deref() {
        // Packets still resident in the qdisc at a timed shutdown hold
        // slab charges; the run is over, so give them back — the budget's
        // books close at zero.
        m.release(PKT_SLAB_BYTES.saturating_mul(shard.qdisc.len() as u64));
    }
    stats.set(C_TRANSMITTED, shard.transmitted);
    stats.set(C_TX_BYTES, shard.tx_bytes);
    stats.set(C_TIMER_FIRES, shard.timer_fires);
    stats.set(C_ENQUEUED, enqueued);
    ShardOutcome {
        shard,
        releases,
        final_now,
        ring_residue,
        completions_lost,
    }
}

/// Publishes the disposed-packet counter *after* the completion pushes it
/// covers. The release fence (paired with the producer's acquire fence)
/// guarantees a reader that observes the new count can also pop every
/// completion it counts — so reconciliation under-estimates losses rather
/// than inventing them.
fn publish_disposed<Q: ShaperQdisc>(stats: &ShardCounters, shard: &Shard<Q>) {
    fence(Ordering::Release);
    stats.set(
        C_DISPOSED,
        shard.transmitted + shard.admission_dropped + shard.evicted,
    );
}

/// What the producer loop hands back.
#[derive(Debug, Default)]
struct ProducerOutcome {
    emitted: u64,
    ring_full_retries: u64,
    timed_out: bool,
    dropped_per_shard: Vec<u64>,
    drops: Vec<(WallNanos, FlowId, u64)>,
    redirected: u64,
    stalls_detected: u64,
    recoveries: u64,
    completions_recovered: u64,
    setup_refused: u64,
    mem_deferrals: u64,
    cl: Option<ClosedLoopSummary>,
}

/// Per-flow producer state (the application + TCP-stack model).
struct FlowState {
    budget: u32,
    inflight: u32,
    sent: u64,
    arrivals: u64,
    /// Already sitting in the ready queue (dedup so the deque stays
    /// bounded by the flow count).
    queued: bool,
    /// Consecutive ring-full deferrals (exponential-backoff exponent,
    /// capped; reset on a successful emission).
    backoff: u8,
    /// Retry attempts so far — the per-flow jitter key.
    retry_seq: u32,
    /// Flow setup charged against the memory budget (always true without
    /// one).
    established: bool,
    /// Setup charge already released (finite flow fully drained).
    freed: bool,
    /// Earliest next emission (closed-loop pacing; 0 in open loop).
    next_allowed: Nanos,
}

/// Returns one TSQ budget to `flow` — from a completion, or from the
/// watchdog's loss reconciliation. The `inflight == 0` guard makes refunds
/// exact per flow even when reconciliation guessed and the real completion
/// arrives later: a flow never receives more refunds than it had packets
/// in flight. Under a memory budget, the last refund of a fully drained
/// finite flow also tears the flow down, releasing its setup charge —
/// the churn that keeps the active flow set bounded.
fn credit_flow(
    fs: &mut [FlowState],
    flow: FlowId,
    limits: &[u64],
    ready: &mut VecDeque<FlowId>,
    mem: Option<&MemBudget>,
) -> bool {
    let f = &mut fs[flow as usize];
    if f.inflight == 0 {
        return false; // already reconciled by the watchdog
    }
    f.inflight -= 1;
    f.budget += 1;
    let lim = limits[flow as usize];
    if !f.queued && f.sent < lim {
        f.queued = true;
        ready.push_back(flow);
    }
    if let Some(m) = mem {
        if f.established && !f.freed && lim != u64::MAX && f.sent >= lim && f.inflight == 0 {
            f.freed = true;
            m.release(FLOW_SETUP_BYTES);
        }
    }
    true
}

/// Producer per-flow state, allocated *before* the wall clock starts.
///
/// At 10 M flows these vectors are on the order of a gigabyte of
/// first-touch memory — on a small box that alone can take seconds.
/// Building them inside the timed region would silently shorten (or, at
/// the largest grid points, entirely consume) the measured wall, so
/// `run_inner` constructs this up front and only then takes `start`.
struct ProducerState {
    /// Per-flow packet limit (`u64::MAX` = unbounded timed flow).
    limits: Vec<u64>,
    /// Closed-loop transports, one per flow (empty in open loop).
    cl: Vec<ClosedLoopSource>,
    fs: Vec<FlowState>,
    ready: VecDeque<FlowId>,
}

impl ProducerState {
    fn build(cfg: &ThreadedConfig) -> Self {
        let flows = cfg.host.flows;
        let limits: Vec<u64> = match &cfg.pkts_override {
            Some(v) => {
                assert_eq!(v.len(), flows, "pkts_override length");
                v.clone()
            }
            None => vec![cfg.pkts_per_flow.unwrap_or(u64::MAX); flows],
        };
        let cl: Vec<ClosedLoopSource> = match &cfg.closed_loop {
            Some(p) => vec![ClosedLoopSource::new(p); flows],
            None => Vec::new(),
        };
        let fs: Vec<FlowState> = (0..flows)
            .map(|_| FlowState {
                budget: cfg.host.tsq_budget.max(1),
                inflight: 0,
                sent: 0,
                arrivals: 0,
                queued: false,
                backoff: 0,
                retry_seq: 0,
                established: cfg.mem.is_none(),
                freed: false,
                next_allowed: 0,
            })
            .collect();
        ProducerState {
            limits,
            cl,
            fs,
            ready: VecDeque::with_capacity(flows),
        }
    }
}

/// The producer/demux thread body (runs on the caller's thread while the
/// shard threads live in the scope).
#[allow(clippy::too_many_arguments)]
fn producer_loop(
    cfg: &ThreadedConfig,
    state: &mut ProducerState,
    home: &[u32],
    per_flow_bps: u64,
    start: Instant,
    data_tx: &mut [SpscProducer<Packet>],
    ctrl_tx: &mut [SpscProducer<CtrlMsg>],
    comp_rx: &mut [SpscConsumer<Completion>],
    counters: &[ShardCounters],
    faults: &[ShardFaults],
    want_trace: bool,
) -> ProducerOutcome {
    const EMIT_BURST: usize = 256;
    /// Base ring-full backoff; doubles per consecutive deferral, capped at
    /// `BACKOFF_BASE_NS << BACKOFF_MAX_EXP` (≈ 640 µs).
    const BACKOFF_BASE_NS: Nanos = 10_000;
    const BACKOFF_MAX_EXP: u8 = 6;
    let host = &cfg.host;
    let flows = host.flows;
    let n = data_tx.len();
    let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps;
    // Source-side gap: what a flow *offers*, vs `pacing_gap` — what the
    // shard-side shaper *grants*. Equal unless the run models overload.
    let offered_gap = cfg.offered_gap.unwrap_or(pacing_gap).max(1);
    let ring_cap = cfg.ring_capacity.max(1);
    let ProducerState {
        limits,
        cl,
        fs,
        ready,
    } = state;
    let finite = cfg.pkts_per_flow.is_some() || cfg.pkts_override.is_some();
    let flow_cap = cfg.flow_cap.map(|c| c.max(1));
    let wall_limit = cfg.wall_limit.as_nanos();
    if let Some(st) = &cfg.starts {
        assert_eq!(st.len(), flows, "starts length");
        assert!(
            st.windows(2).all(|w| w[0] <= w[1]),
            "starts must be nondecreasing in flow id"
        );
    }
    let watchdog = cfg.chaos.watchdog;
    let cl_params = cfg.closed_loop;
    let mem = cfg.mem.as_deref();

    let mut out = ProducerOutcome {
        dropped_per_shard: vec![0; n],
        ..ProducerOutcome::default()
    };
    // Cap-dropped and ring-deferred flows retry later, as in the simulation.
    let mut retries: BinaryHeap<Reverse<(Nanos, FlowId)>> = BinaryHeap::new();
    // Flows turned away at setup park here, off the hot path entirely: a
    // timed retry at millions of refused flows would have the producer
    // re-refusing the same setups all run — a livelock, not admission
    // control. A bounded probe re-admits them once the refuse tier
    // clears; established-flow churn (a drained finite flow releases its
    // setup charge in `credit_flow`) is what makes the room.
    let mut parked: VecDeque<FlowId> = VecDeque::new();
    const UNPARK_BURST: usize = 256;
    let mut started = 0usize; // flows staggered in over one pacing gap
                              // Flows with a zero limit are born done.
    let mut flows_done = if finite {
        limits.iter().filter(|&&l| l == 0).count()
    } else {
        0
    };
    let mut next_pkt_id = 0u64;

    // Watchdog state: which shards are currently believed alive, the
    // live-set failover list, and per-shard credited completions (popped +
    // reconciled) for completion-loss recovery.
    let mut live = vec![true; n];
    let mut alive: Vec<usize> = (0..n).collect();
    let mut credited = vec![0u64; n];
    let mut next_check = watchdog.map_or(u64::MAX, |w| w.check_every.as_nanos());

    loop {
        let now = start.elapsed().as_nanos() as Nanos;
        let mut worked = false;

        // TSQ completions: return budget, wake throttled flows, and feed
        // the transport its congestion signal (the echoed ECN mark or the
        // loss) — the closed loop closing. A rejected credit
        // (`inflight == 0`) is the real completion of a disposal the
        // reconciliation below already pre-refunded — that disposal was
        // counted then, so counting the pop too would double-credit it and
        // hide a genuinely lost completion forever. (The congestion signal
        // is still genuine either way, so it is always delivered.)
        for (s, rx) in comp_rx.iter_mut().enumerate() {
            while let Some(c) = rx.pop() {
                if let Some(p) = &cl_params {
                    match c.kind {
                        CompletionKind::Delivered => {
                            cl[c.flow as usize].on_completion(p, false);
                        }
                        CompletionKind::DeliveredMarked => {
                            cl[c.flow as usize].on_completion(p, true);
                        }
                        CompletionKind::Dropped => cl[c.flow as usize].on_loss(p),
                    }
                }
                if credit_flow(fs, c.flow, limits, ready, mem) {
                    credited[s] += 1;
                }
                worked = true;
            }
        }

        // Watchdog tick: stall detection via heartbeats, failover of the
        // live set, and completion-loss reconciliation.
        if now >= next_check {
            let w = watchdog.expect("next_check is finite only with a watchdog");
            for s in 0..n {
                let hb = counters[s].read(C_HEARTBEAT);
                let stalled = now.saturating_sub(hb) > w.stall_after.as_nanos();
                if stalled && live[s] {
                    live[s] = false;
                    out.stalls_detected += 1;
                } else if !stalled && !live[s] {
                    live[s] = true;
                    out.recoveries += 1;
                }
                // Reconciliation order matters: snapshot the disposed
                // counter *first* (acquire-fenced against the shard's
                // release), then drain the ring — so `disposed − credited`
                // can only under-count losses, never invent them.
                let disposed = counters[s].read(C_DISPOSED);
                fence(Ordering::Acquire);
                while let Some(c) = comp_rx[s].pop() {
                    if let Some(p) = &cl_params {
                        match c.kind {
                            CompletionKind::Delivered => {
                                cl[c.flow as usize].on_completion(p, false);
                            }
                            CompletionKind::DeliveredMarked => {
                                cl[c.flow as usize].on_completion(p, true);
                            }
                            CompletionKind::Dropped => cl[c.flow as usize].on_loss(p),
                        }
                    }
                    if credit_flow(fs, c.flow, limits, ready, mem) {
                        credited[s] += 1;
                    }
                }
                let lost = disposed.saturating_sub(credited[s]);
                if lost > 0 {
                    // Leaked TSQ budgets: completions vanished on the wire.
                    // Refund flows still holding inflight — starved flows
                    // (budget 0) first, socket-scan style. Per-flow
                    // attribution is best-effort; the aggregate is exact
                    // and `credit_flow`'s guard keeps refunds ≤ inflight.
                    let mut recovered = 0u64;
                    for pass in 0..2 {
                        for f in 0..flows as u32 {
                            if recovered == lost {
                                break;
                            }
                            let starving = fs[f as usize].budget == 0;
                            if (pass == 0 && !starving) || fs[f as usize].inflight == 0 {
                                continue;
                            }
                            if credit_flow(fs, f, limits, ready, mem) {
                                recovered += 1;
                            }
                        }
                    }
                    credited[s] += recovered;
                    out.completions_recovered += recovered;
                }
            }
            alive = (0..n).filter(|&s| live[s]).collect();
            next_check = now + w.check_every.as_nanos();
            worked = true;
        }

        // Start flows: explicit schedule (incast waves), or staggered
        // across one offered gap (same schedule as the simulated host:
        // depends only on id and total flow count).
        loop {
            if started >= flows {
                break;
            }
            let due = match &cfg.starts {
                Some(st) => now >= st[started],
                None => now >= offered_gap * started as u64 / flows as u64,
            };
            if !due {
                break;
            }
            let flow = started as FlowId;
            if !fs[started].queued {
                fs[started].queued = true;
                ready.push_back(flow);
            }
            started += 1;
            worked = true;
        }

        // Due retries from earlier cap drops and ring-full deferrals.
        while let Some(&Reverse((at, flow))) = retries.peek() {
            if at > now {
                break;
            }
            retries.pop();
            let f = &mut fs[flow as usize];
            if !f.queued {
                f.queued = true;
                ready.push_back(flow);
            }
            worked = true;
        }

        // Re-admit parked flows once the refuse tier clears — a bounded
        // burst per pass, so a tier flickering at the threshold costs
        // O(UNPARK_BURST), never a stampede of the whole parked set.
        if !parked.is_empty() && mem.is_some_and(|m| m.tier() != DegradeTier::Refuse) {
            for _ in 0..UNPARK_BURST {
                let Some(flow) = parked.pop_front() else {
                    break;
                };
                let f = &mut fs[flow as usize];
                if !f.queued {
                    f.queued = true;
                    ready.push_back(flow);
                }
                worked = true;
            }
        }

        // Emit a burst of arrivals.
        for _ in 0..EMIT_BURST {
            let Some(flow) = ready.pop_front() else { break };
            let i = flow as usize;
            fs[i].queued = false;
            if fs[i].budget == 0 || fs[i].sent >= limits[i] {
                continue; // throttled (a completion requeues) or done
            }
            if cl_params.is_some() && now < fs[i].next_allowed {
                // Closed-loop pacing: the transport's congestion window
                // says not yet (stray completion wakeups land here).
                retries.push(Reverse((fs[i].next_allowed, flow)));
                continue;
            }
            if !fs[i].established {
                // Flow setup under a memory budget: the refuse tier (or an
                // exhausted budget) turns new flows away before any packet
                // memory is committed — the strongest degradation. Refused
                // flows park until the tier clears (the unpark probe
                // above), so a saturated budget costs O(1) per flow, not a
                // retry storm. A failed charge nearly always means the
                // tier is already Refuse (512 B of headroom sits inside
                // the 95 % threshold once the budget exceeds ~10 KB), so
                // park/unpark churn stays within the probe's burst bound.
                let m = mem.expect("unestablished flows only exist under a budget");
                if m.tier() == DegradeTier::Refuse || !m.try_charge(FLOW_SETUP_BYTES) {
                    out.setup_refused += 1;
                    parked.push_back(flow);
                    continue;
                }
                fs[i].established = true;
            }
            let s_home = home[i] as usize;
            // Failover: a watchdog-suspect shard stops receiving new work;
            // its flows rehash over the live set (stable `shard_of` on the
            // live list, so a flow keeps one failover home while the set
            // is unchanged). Trades per-flow ordering for liveness.
            let s = if live[s_home] || alive.is_empty() {
                s_home
            } else {
                alive[shard_of(flow, alive.len())]
            };
            // Bounded backoff on a full — or fault-squeezed — ring. The
            // producer-view `len()` can only over-count occupancy, so
            // `len < cap` guarantees the push lands; no spin, no blocking.
            let eff_cap = faults[s].ring_capacity(now, ring_cap);
            if data_tx[s].len() >= eff_cap {
                // Bounded exponential backoff, plus deterministic seeded
                // jitter keyed on (flow, attempt): producers that found
                // the ring full at the same instant would otherwise all
                // return `BACKOFF_BASE_NS << exp` later — in lockstep, to
                // the same full ring (the thundering herd).
                out.ring_full_retries += 1;
                let exp = fs[i].backoff.min(BACKOFF_MAX_EXP);
                fs[i].backoff = fs[i].backoff.saturating_add(1);
                fs[i].retry_seq = fs[i].retry_seq.wrapping_add(1);
                let base = BACKOFF_BASE_NS << exp;
                let at = now + base + backoff_jitter(flow, fs[i].retry_seq, base / 2);
                retries.push(Reverse((at, flow)));
                continue;
            }
            fs[i].backoff = 0;
            fs[i].arrivals += 1;
            if flow_cap.is_some_and(|cap| fs[i].inflight >= cap) {
                out.dropped_per_shard[s_home] += 1;
                if want_trace {
                    out.drops.push((WallNanos(now), flow, fs[i].arrivals - 1));
                }
                retries.push(Reverse((now + offered_gap, flow)));
                continue;
            }
            if let Some(m) = mem {
                // Per-packet slab accounting: an exhausted budget defers
                // the emission (jittered) instead of allocating — backlog
                // memory cannot exceed the budget, whatever the ring and
                // qdisc capacities would admit. The retry is source-side
                // (the sender re-offers), so it backs off by the offered
                // gap — under decoupled overload the shaped gap can be
                // seconds, which would idle the slab pool it waits for.
                if !m.try_charge(PKT_SLAB_BYTES) {
                    out.mem_deferrals += 1;
                    fs[i].retry_seq = fs[i].retry_seq.wrapping_add(1);
                    let base = offered_gap;
                    let at = now + base + backoff_jitter(flow, fs[i].retry_seq, base / 2);
                    retries.push(Reverse((at, flow)));
                    continue;
                }
            }
            fs[i].budget -= 1;
            fs[i].inflight += 1;
            fs[i].sent += 1;
            if finite && fs[i].sent == limits[i] {
                flows_done += 1;
            }
            let pkt = Packet::mtu(next_pkt_id, flow, now);
            next_pkt_id += 1;
            data_tx[s]
                .push(pkt)
                .unwrap_or_else(|_| unreachable!("len() < capacity guarantees SPSC space"));
            if s != s_home {
                out.redirected += 1;
            }
            out.emitted += 1;
            if cl_params.is_some() {
                // The transport paces itself: next emission no earlier
                // than the base gap stretched by its congestion scale.
                fs[i].next_allowed = now + cl[i].gap(offered_gap).max(1);
            }
            if fs[i].budget > 0 && fs[i].sent < limits[i] {
                if cl_params.is_some() {
                    retries.push(Reverse((fs[i].next_allowed, flow)));
                } else {
                    // Bulk sender: back-to-back until TSQ throttles.
                    fs[i].queued = true;
                    ready.push_back(flow);
                }
            }
            worked = true;
        }

        // Termination.
        if finite && flows_done == flows {
            for tx in ctrl_tx.iter_mut() {
                let _ = tx.push(CtrlMsg::Shutdown { drain: true });
            }
            break;
        }
        if now >= wall_limit {
            out.timed_out = finite; // normal end for timed runs
            for tx in ctrl_tx.iter_mut() {
                let _ = tx.push(CtrlMsg::Shutdown { drain: false });
            }
            break;
        }
        if !worked {
            std::thread::yield_now();
        }
    }
    if let Some(m) = mem {
        // Run over: the sources close. Release the setup charge of every
        // still-established flow — their final completions may still be in
        // flight (the join loop discards them), and timed runs end with
        // flows mid-stream by design.
        for f in fs.iter_mut() {
            if f.established && !f.freed {
                f.freed = true;
                m.release(FLOW_SETUP_BYTES);
            }
        }
    }
    out.cl = cl_params.map(|_| summarize_closed_loop(cl));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eiffel::EiffelQdisc;
    use eiffel_sim::Rate;

    fn tiny_host(flows: usize) -> HostConfig {
        HostConfig {
            flows,
            aggregate: Rate::mbps(60 * flows as u64), // 60 Mbps per flow
            duration: SECOND,                         // ignored by threaded runs
            bin: SECOND / 20,
            tsq_budget: 2,
            batch: 4,
        }
    }

    #[test]
    fn finite_run_delivers_every_packet_and_drains() {
        let cfg = ThreadedConfig::finite(2, tiny_host(8), 5);
        let (r, tr) = run_threaded_traced(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out, "drain run hit the wall limit");
        assert_eq!(r.emitted, 8 * 5);
        assert_eq!(r.transmitted, 8 * 5, "everything emitted must release");
        assert_eq!(r.dropped, 0);
        assert_eq!(r.per_shard.len(), 2);
        let homed: usize = r.per_shard.iter().map(|s| s.flows).sum();
        assert_eq!(homed, 8);
        for flow in 0..8u32 {
            assert_eq!(tr.flow_release_ids(flow).len(), 5, "flow {flow}");
        }
    }

    #[test]
    fn timed_run_reports_wall_rate_and_live_counters_converge() {
        let mut cfg = ThreadedConfig::timed(2, tiny_host(16), WallNanos::from_millis(40));
        cfg.host.batch = 8;
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(r.transmitted > 0, "a 40ms run must release packets");
        assert!(r.wall_elapsed >= WallNanos::from_millis(40));
        assert!(r.achieved_bps > 0.0);
        assert!(r.timer_fires > 0);
        assert!(!r.timed_out, "timed runs end at the limit by design");
    }

    #[test]
    fn flow_cap_drops_and_recovers_on_threads() {
        let mut cfg = ThreadedConfig::finite(3, tiny_host(6), 12);
        cfg.host.tsq_budget = 4;
        cfg.flow_cap = Some(1); // cap below budget ⇒ must bind sometimes
        let (r, tr) = run_threaded_traced(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out);
        // Every flow still completes its finite workload despite drops.
        assert_eq!(r.transmitted, 6 * 12);
        assert_eq!(r.dropped as usize, tr.drops.len());
    }

    use eiffel_chaos::{FaultPlan, WatchdogConfig};

    /// Every packet minted must end the run accounted for: released,
    /// refused by admission, or evicted — nothing lost, nothing invented.
    fn assert_conserving(r: &ThreadedReport) {
        assert_eq!(r.chaos.final_unaccounted, 0, "conservation: {:?}", r.chaos);
        assert_eq!(
            r.emitted,
            r.transmitted + r.chaos.admission_dropped + r.chaos.evicted + r.chaos.ring_residue,
            "emitted must split exactly into released + refused + evicted"
        );
    }

    #[test]
    fn watchdog_detects_stall_redirects_and_recovers() {
        // Shard 0 freezes 1ms..4ms; the watchdog (0.5ms sampling, 1ms
        // threshold) must notice by ~2.5ms, fail its flows over to shard 1,
        // and restore it when the heartbeat returns. Every flow starts at
        // 3ms — inside the stall, after detection — so the shard-0 flows'
        // opening bursts *must* take the failover path (flows already
        // throttled on a dead shard hold no budget and cannot be steered;
        // they drain in place when it thaws).
        let mut cfg = ThreadedConfig::finite(2, tiny_host(8), 40);
        cfg.starts = Some(vec![3_000_000; 8]);
        cfg.chaos.plan = FaultPlan::new(11).stall(0, 1_000_000, 4_000_000);
        cfg.chaos.watchdog = Some(WatchdogConfig {
            check_every: WallNanos::from_nanos(500_000),
            stall_after: WallNanos::from_nanos(1_000_000),
        });
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out, "stalled run must not wedge");
        assert_eq!(r.transmitted, 8 * 40, "every packet still delivered");
        assert!(r.chaos.stalls_detected >= 1, "{:?}", r.chaos);
        assert!(r.chaos.recoveries >= 1, "shard 0 resumes at 4ms");
        assert!(
            r.chaos.redirected > 0,
            "shard-0 flows emitted during the stall"
        );
        assert_conserving(&r);
    }

    #[test]
    fn stall_without_watchdog_still_drains_and_conserves() {
        // No watchdog: the producer backs off against the frozen shards'
        // rings and simply waits the stall out. Slower, never wedged.
        // Both shards freeze from t=0 with 2-slot rings, so the flows'
        // opening TSQ burst (budget 4 each, back-to-back) must overrun
        // the squeezed capacity and defer — TSQ alone cannot gate it.
        let mut cfg = ThreadedConfig::finite(2, tiny_host(8), 20);
        cfg.host.tsq_budget = 4;
        cfg.chaos.plan = FaultPlan::new(12)
            .stall(0, 0, 2_000_000)
            .ring_squeeze(0, 0, 2_000_000, 2)
            .stall(1, 0, 2_000_000)
            .ring_squeeze(1, 0, 2_000_000, 2);
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out);
        assert_eq!(r.transmitted, 8 * 20);
        assert!(
            r.ring_full_retries > 0,
            "an opening burst into frozen 2-slot rings must defer"
        );
        assert_eq!(r.chaos.stalls_detected, 0, "no watchdog, no detections");
        assert_conserving(&r);
    }

    #[test]
    fn completion_loss_is_reconciled_not_wedged() {
        // Half of shard 0's completions vanish for the whole run. Without
        // reconciliation every flow homed there wedges once its TSQ budget
        // leaks away; the watchdog's credit audit must refund them.
        let mut cfg = ThreadedConfig::finite(2, tiny_host(6), 25);
        cfg.chaos.plan = FaultPlan::new(13).completion_loss(0, 0, 40_000_000, 2);
        cfg.chaos.watchdog = Some(WatchdogConfig {
            check_every: WallNanos::from_nanos(300_000),
            stall_after: WallNanos::from_nanos(30_000_000),
        });
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(
            !r.timed_out,
            "leaked budgets must be refunded, not waited on"
        );
        assert_eq!(r.transmitted, 6 * 25);
        assert!(r.chaos.completions_lost > 0, "{:?}", r.chaos);
        assert!(
            r.chaos.completions_recovered > 0,
            "reconciliation must refund leaked budgets: {:?}",
            r.chaos
        );
        assert_conserving(&r);
    }

    #[test]
    fn jitter_squeeze_and_slow_consumer_conserve() {
        // The "everything at once" run: timers slip, rings shrink, the
        // consumer crawls. Throughput may degrade; accounting may not.
        let mut cfg = ThreadedConfig::finite(3, tiny_host(9), 15);
        cfg.chaos.plan = FaultPlan::new(14)
            .timer_jitter(0, 0, 20_000_000, 150_000)
            .ring_squeeze(1, 1_000_000, 6_000_000, 4)
            .slow_consumer(2, 0, 20_000_000, 20_000)
            .stall(1, 2_000_000, 3_000_000);
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out);
        assert_eq!(r.transmitted, 9 * 15, "degraded, never lossy");
        assert_conserving(&r);
    }

    #[test]
    fn closed_loop_with_mem_budget_drains_and_frees_everything() {
        // ECN-reactive sources under a budget small enough that packet
        // slabs contend: the run must still drain its finite workload,
        // never charge past the budget, and return every byte by the end
        // (slabs on disposal, flow setups on teardown).
        let mut cfg = ThreadedConfig::finite(2, tiny_host(8), 30);
        cfg.host.tsq_budget = 4;
        cfg.chaos.admit = AdmitPolicy::EcnMark {
            cap: 16,
            mark_at: 2,
        };
        cfg.closed_loop = Some(ClosedLoopParams::default());
        let budget = Arc::new(MemBudget::new(8 * 1024));
        cfg.mem = Some(Arc::clone(&budget));
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out, "budget contention must not wedge the run");
        assert_eq!(r.transmitted, 8 * 30);
        assert!(r.cl.is_some(), "closed-loop summary present");
        assert!(r.mem_peak_bytes > 0, "charges were taken");
        assert!(r.mem_peak_bytes <= budget.budget(), "hard ceiling");
        assert_eq!(
            budget.in_use(),
            0,
            "every slab and setup charge returned by the end"
        );
        assert_conserving(&r);
    }

    #[test]
    fn tail_drop_admission_sheds_load_and_refunds_budget() {
        // A 1-packet qdisc budget under a 4-packet TSQ window: admission
        // must shed arrivals, and every refusal must hand its TSQ budget
        // back so the flow keeps emitting to its finite limit.
        let mut cfg = ThreadedConfig::finite(2, tiny_host(6), 20);
        cfg.host.tsq_budget = 4;
        cfg.chaos.admit = AdmitPolicy::TailDrop { cap: 1 };
        let r = run_threaded(|_| EiffelQdisc::new(1 << 14, 100_000), &cfg);
        assert!(!r.timed_out);
        assert_eq!(
            r.emitted,
            6 * 20,
            "refusals refund budget; emission completes"
        );
        assert!(r.chaos.admission_dropped > 0, "{:?}", r.chaos);
        assert_eq!(r.transmitted + r.chaos.admission_dropped, r.emitted);
        assert_conserving(&r);
    }
}
