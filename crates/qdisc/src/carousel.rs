//! The Carousel qdisc baseline — Timing Wheel shaping (§5.1.1).
//!
//! "We implement a qdisc where all packets are queued in a timing wheel. A
//! timer fires every time instant (according to the granularity of the
//! timing wheel) and checks whether it has packets that should be sent."
//!
//! Timestamps are computed per socket exactly as in Eiffel's qdisc (both
//! follow Carousel's timestamp-per-packet insight); the *difference under
//! measurement* is the data structure and the timer discipline: a wheel has
//! no `ExtractMin`, so the softirq must poll every slot whether or not
//! anything is due — the cost Figure 10 (right) attributes to Carousel.

use std::collections::HashMap;

use eiffel_core::TimingWheel;
use eiffel_sim::{FlowId, Nanos, Packet};

use crate::qdisc::{ShaperQdisc, TimerStyle};

/// Carousel: per-socket timestamping + a timing wheel.
pub struct CarouselQdisc {
    wheel: TimingWheel<Packet>,
    /// Per-socket shaper clock (the paper keeps this in `sock.h`).
    next_eligible: HashMap<FlowId, Nanos>,
    /// Release staging: `advance` drains whole slots; dequeue hands packets
    /// out one at a time.
    staged: Vec<(u64, Packet)>,
    staged_next: usize,
    slot_ns: Nanos,
}

impl CarouselQdisc {
    /// A wheel of `slots` slots × `slot_ns` per slot (the horizon is their
    /// product; Carousel's evaluation used single-digit-µs slots over a
    /// couple of seconds).
    pub fn new(slots: usize, slot_ns: Nanos) -> Self {
        CarouselQdisc {
            wheel: TimingWheel::new(slots, slot_ns, 0),
            next_eligible: HashMap::new(),
            staged: Vec::new(),
            staged_next: 0,
            slot_ns,
        }
    }

    fn stamp(&mut self, now: Nanos, flow: FlowId, bytes: u64, rate_bps: u64) -> Nanos {
        let clock = self.next_eligible.entry(flow).or_insert(0);
        let release = (*clock).max(now);
        let wire_ns = (bytes * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(rate_bps)
            .unwrap_or(0);
        *clock = release + wire_ns;
        release
    }
}

impl ShaperQdisc for CarouselQdisc {
    fn name(&self) -> &'static str {
        "carousel"
    }

    fn enqueue(&mut self, now: Nanos, pkt: Packet, pacing_rate_bps: u64) {
        let ts = self.stamp(now, pkt.flow, pkt.bytes as u64, pacing_rate_bps);
        self.wheel.schedule(ts, pkt);
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        if self.staged_next >= self.staged.len() {
            self.staged.clear();
            self.staged_next = 0;
            self.wheel.advance(now, &mut self.staged);
        }
        let i = self.staged_next;
        if i < self.staged.len() {
            self.staged_next += 1;
            // Move out without shifting the vector (drained on next refill).
            let (_, pkt) = std::mem::replace(&mut self.staged[i], (0, Packet::new(0, 0, 0, 0)));
            Some(pkt)
        } else {
            None
        }
    }

    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        // The wheel's `advance` already drains whole slots into the staging
        // buffer; the batch path hands out runs of staged packets without
        // re-probing the wheel between them.
        let mut n = 0;
        while n < max {
            if self.staged_next >= self.staged.len() {
                self.staged.clear();
                self.staged_next = 0;
                self.wheel.advance(now, &mut self.staged);
                if self.staged.is_empty() {
                    break;
                }
            }
            while n < max && self.staged_next < self.staged.len() {
                let i = self.staged_next;
                self.staged_next += 1;
                let (_, pkt) = std::mem::replace(&mut self.staged[i], (0, Packet::new(0, 0, 0, 0)));
                out.push(pkt);
                n += 1;
            }
        }
        n
    }

    fn next_deadline(&self, now: Nanos) -> Option<Nanos> {
        if self.staged_next < self.staged.len() || !self.wheel.is_empty() {
            // A wheel cannot report its earliest element: the timer simply
            // fires at the next slot boundary.
            Some(now + self.slot_ns)
        } else {
            None
        }
    }

    fn timer_style(&self) -> TimerStyle {
        TimerStyle::Periodic {
            period: self.slot_ns,
        }
    }

    fn len(&self) -> usize {
        self.wheel.len() + (self.staged.len() - self.staged_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_like_a_shaper_with_slot_granularity() {
        let mut q = CarouselQdisc::new(1 << 20, 2_000); // 2 µs slots
                                                        // 12 Mbps → 1 ms per MTU.
        for i in 0..3 {
            q.enqueue(0, Packet::mtu(i, 1, 0), 12_000_000);
        }
        assert_eq!(q.dequeue(0).unwrap().id, 0);
        assert!(q.dequeue(0).is_none());
        assert!(
            q.dequeue(999_000).is_none(),
            "not yet: slot for t=1ms not reached"
        );
        assert_eq!(q.dequeue(1_000_000).unwrap().id, 1);
        assert_eq!(q.dequeue(2_000_001).unwrap().id, 2);
        assert!(q.is_empty());
        assert_eq!(q.dequeue(5_000_000), None);
    }

    #[test]
    fn periodic_timer_style_with_slot_period() {
        let q = CarouselQdisc::new(1024, 2_000);
        assert_eq!(q.timer_style(), TimerStyle::Periodic { period: 2_000 });
    }

    #[test]
    fn idle_wheel_reports_no_deadline() {
        let mut q = CarouselQdisc::new(1024, 1_000);
        assert_eq!(q.next_deadline(0), None);
        q.enqueue(0, Packet::mtu(0, 1, 0), 0);
        assert_eq!(q.next_deadline(0), Some(1_000), "next slot boundary");
        q.dequeue(0).unwrap();
        assert_eq!(q.next_deadline(10_000), None);
    }

    #[test]
    fn per_flow_clocks_are_independent() {
        let mut q = CarouselQdisc::new(1 << 16, 1_000);
        // Flow 1 at 12 Mbps, flow 2 at 120 Mbps.
        q.enqueue(0, Packet::mtu(0, 1, 0), 12_000_000);
        q.enqueue(0, Packet::mtu(1, 1, 0), 12_000_000);
        q.enqueue(0, Packet::mtu(2, 2, 0), 120_000_000);
        q.enqueue(0, Packet::mtu(3, 2, 0), 120_000_000);
        // Both first packets at t=0; flow 2's second at 0.1 ms, flow 1's at 1 ms.
        let mut order = Vec::new();
        let mut now = 0;
        while !q.is_empty() {
            while let Some(p) = q.dequeue(now) {
                order.push(p.id);
            }
            now += 1_000;
        }
        assert_eq!(order, vec![0, 2, 3, 1]);
    }
}
