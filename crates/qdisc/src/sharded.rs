//! The sharded multi-core host model: N simulated cores, one shaping qdisc
//! each, under one virtual clock.
//!
//! Modern hosts do not funnel every socket through one qdisc instance: the
//! stack hashes flows to per-core queues (RSS/XPS style) and each core runs
//! its own scheduler — Carousel's deployment model ("a single queue per
//! core") and the scale-out shape Eiffel's §5 end-host numbers assume. This
//! module owns the one event loop behind both host models —
//! [`crate::host::run`] is its 1-shard case — and generalizes it to N:
//!
//! * **Stable flow→shard hashing** ([`eiffel_sim::shard_of`]): a flow's
//!   packets always meet the same qdisc instance, so per-flow FIFO order and
//!   shaping behaviour are preserved no matter how many cores serve the
//!   host. The shard-equivalence property test pins this: an N-shard host
//!   is *per-flow identical* (release times, byte counts, drop decisions)
//!   to the single-shard host.
//! * **Per-shard timers and CPU meters**: each simulated core arms its own
//!   softirq timer from its own qdisc's `next_deadline` and meters its own
//!   enqueue/dequeue nanoseconds; the merged [`ShardedReport`] carries both
//!   the per-shard and the aggregate view (rate, backlog, drops, fires).
//! * **Batched dequeue**: the softirq drain goes through
//!   [`ShaperQdisc::dequeue_batch`] with [`HostConfig::batch`], the
//!   queue-layer amortization (one min-find per due bucket) lifted into the
//!   host pipeline.
//!
//! Event ordering: at equal virtual time, timer (softirq) events run before
//! source (syscall) events — softirq context preempts the sender path on a
//! real core. Unlike the plain arrival-order tie-break of
//! [`eiffel_sim::EventQueue`], this rule is shard-count-invariant, which is
//! what makes the N-vs-1 equivalence exact rather than statistical.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use eiffel_chaos::{Admission, AdmitPolicy, ChaosConfig, ShardFaults};
use eiffel_core::{DegradeTier, MemBudget, FLOW_SETUP_BYTES, PKT_SLAB_BYTES};
use eiffel_sim::cpu::{IRQ_ENTRY_NS, LOCK_NS, PER_PACKET_STACK_NS};
use eiffel_sim::{shard_of, CpuCategory, CpuMeter, FlowId, Nanos, Packet, SplitMix64};
use eiffel_workloads::{
    summarize_closed_loop, ClosedLoopParams, ClosedLoopSource, ClosedLoopSummary,
};

use crate::host::{wanted_deadline, HostConfig};
use crate::qdisc::ShaperQdisc;

/// Parameters of a sharded run. `host.flows` and `host.aggregate` are the
/// totals across all shards; flows are split by [`eiffel_sim::shard_of`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Simulated cores (qdisc instances). 1 reproduces the single-core
    /// host's behaviour under the sharded event rules.
    pub shards: usize,
    /// The per-host workload (flows, aggregate rate, duration, TSQ budget,
    /// softirq drain batch).
    pub host: HostConfig,
    /// Per-flow in-qdisc packet cap (≥ 1): an arrival finding the flow at
    /// its cap is dropped and the source retries one pacing gap later —
    /// qdisc-full backpressure. `None` = never drop. Kept per-flow (not
    /// per-shard) so drop decisions are shard-count-invariant, which the
    /// equivalence property test asserts.
    pub flow_cap: Option<u32>,
    /// Finite workload: each flow emits exactly this many packets, then
    /// stops (dropped arrivals are retried, not counted). The run ends when
    /// the qdiscs drain, even before `host.duration`. `None` = flows stay
    /// backlogged for the whole duration (the paper's neper workload).
    ///
    /// A finite workload makes the per-flow packet/byte/drop totals
    /// *time-free* invariants — the property the threaded-vs-simulated
    /// equivalence suite compares across clocks.
    pub pkts_per_flow: Option<u64>,
    /// Per-flow packet-count overrides (heavy-tailed workloads): flow `i`
    /// emits `pkts_override[i]` packets. Takes precedence over
    /// `pkts_per_flow` where present; must have `host.flows` entries.
    pub pkts_override: Option<Vec<u64>>,
    /// Per-flow first-emission times (incast waves): flow `i` starts at
    /// `starts[i]`. `None` = the classic smooth stagger over one pacing
    /// gap. Must have `host.flows` entries.
    pub starts: Option<Vec<Nanos>>,
    /// Fault plan + admission policy. The default is a no-op: no fault
    /// windows, unlimited admission — behavior is bit-identical to the
    /// pre-chaos host (the watchdog field is threaded-runtime-only and
    /// ignored here; the virtual clock *knows* when stalls end).
    pub chaos: ChaosConfig,
    /// Closed-loop (DCTCP-style) sources: emissions are paced at a
    /// per-flow rate scale driven by the ECN marks and drops the
    /// admission layer echoes back on the completion path. `None` keeps
    /// the historical open-loop sources bit-identical.
    pub closed_loop: Option<ClosedLoopParams>,
    /// Memory budget the run charges flow setup and packet slabs
    /// against; its [`DegradeTier`] tightens admission and, at the
    /// refuse tier, blocks new flow setup. `None` = unbounded (the
    /// historical behavior).
    pub mem: Option<Arc<MemBudget>>,
    /// Base inter-emission gap for closed-loop sources, decoupled from
    /// the shaped per-flow rate. The qdisc still paces (ranks) at
    /// `aggregate/flows`; a source at full scale emits one packet per
    /// `offered_gap` — smaller than the pacing gap means sustained
    /// overload, the regime the control loop exists for. `None` = the
    /// pacing gap (offered equals shaped; a quiet channel).
    pub offered_gap: Option<Nanos>,
}

impl ShardedConfig {
    /// `shards` cores over the given host workload, no drops, open-ended.
    pub fn new(shards: usize, host: HostConfig) -> Self {
        ShardedConfig {
            shards,
            host,
            flow_cap: None,
            pkts_per_flow: None,
            pkts_override: None,
            starts: None,
            chaos: ChaosConfig::default(),
            closed_loop: None,
            mem: None,
            offered_gap: None,
        }
    }
}

/// Admission outcomes split by the [`DegradeTier`] they were decided
/// under — the per-tier marks/drops/shed view the overload reports
/// surface. Indexed by `tier as usize`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Arrivals admitted unmarked at each tier.
    pub admitted: [u64; DegradeTier::COUNT],
    /// Arrivals admitted with an ECN mark at each tier.
    pub marked: [u64; DegradeTier::COUNT],
    /// Arrivals dropped at each tier.
    pub dropped: [u64; DegradeTier::COUNT],
    /// Worst-ranked residents shed (evicted) at each tier.
    pub shed: [u64; DegradeTier::COUNT],
}

impl TierCounters {
    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &TierCounters) {
        for t in 0..DegradeTier::COUNT {
            self.admitted[t] += o.admitted[t];
            self.marked[t] += o.marked[t];
            self.dropped[t] += o.dropped[t];
            self.shed[t] += o.shed[t];
        }
    }

    /// Number of distinct tiers that saw any admission decision.
    pub fn tiers_exercised(&self) -> usize {
        (0..DegradeTier::COUNT)
            .filter(|&t| self.admitted[t] + self.marked[t] + self.dropped[t] + self.shed[t] > 0)
            .count()
    }

    /// Total decisions recorded at one tier.
    pub fn total_at(&self, tier: DegradeTier) -> u64 {
        let t = tier as usize;
        self.admitted[t] + self.marked[t] + self.dropped[t] + self.shed[t]
    }
}

/// Power-of-two-bucketed sojourn histogram: bucket `b` holds released
/// packets whose in-qdisc sojourn fell in `[2^b, 2^{b+1})` ns. 64
/// buckets cover the whole `u64` range in 512 bytes per shard, enough
/// resolution for the p99-style tail the overload figures report.
#[derive(Debug, Clone)]
pub struct SojournHist {
    counts: [u64; 64],
    total: u64,
}

impl Default for SojournHist {
    fn default() -> Self {
        SojournHist {
            counts: [0; 64],
            total: 0,
        }
    }
}

impl SojournHist {
    fn bucket(ns: u64) -> usize {
        63 - (ns | 1).leading_zeros() as usize
    }

    /// Record one released packet's sojourn.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
    }

    /// Element-wise accumulate.
    pub fn merge(&mut self, o: &SojournHist) {
        for (a, b) in self.counts.iter_mut().zip(&o.counts) {
            *a += b;
        }
        self.total += o.total;
    }

    /// Samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Upper edge of the bucket holding the `q`-quantile sample (e.g.
    /// `quantile(0.99)` bounds the p99 sojourn from above within a
    /// factor of 2). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if b >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Fraction of samples at or below `ns`, with linear interpolation
    /// inside the straddling bucket — the SLO-goodput numerator.
    pub fn frac_le(&self, ns: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut covered = 0.0f64;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo = if b == 0 { 0u64 } else { 1u64 << b };
            let hi = if b >= 63 { u64::MAX } else { 1u64 << (b + 1) };
            if hi <= ns {
                covered += c as f64;
            } else if lo < ns {
                let span = (hi - lo) as f64;
                covered += c as f64 * (ns - lo) as f64 / span;
            }
        }
        covered / self.total as f64
    }
}

/// One simulated core's slice of the run.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Flows hashed to this shard.
    pub flows: usize,
    /// Packets this shard's qdisc released.
    pub transmitted: u64,
    /// This shard's achieved rate in bits/s.
    pub achieved_bps: f64,
    /// Arrivals dropped at this shard's cap.
    pub dropped: u64,
    /// Timer fires on this core.
    pub timer_fires: u64,
    /// Median cores of this core's meter (system + softirq).
    pub median_cores: f64,
    /// Peak packets inside this shard's qdisc.
    pub peak_backlog: usize,
    /// Arrivals dropped by the admission policy at this shard's qdisc
    /// (tail drops, plus priority-drop fallbacks on maxless backends).
    pub admission_dropped: u64,
    /// Arrivals admitted but ECN-marked.
    pub ecn_marked: u64,
    /// Resident packets evicted by priority-drop admission.
    pub evicted: u64,
    /// Mean in-qdisc sojourn of released packets, ns (0 when none).
    pub mean_latency_ns: f64,
    /// Worst in-qdisc sojourn of a released packet, ns.
    pub max_latency_ns: u64,
    /// Admission decisions split by the memory-pressure tier they were
    /// made under (all in the `Normal` column without a [`MemBudget`]).
    pub tiers: TierCounters,
    /// Sojourn histogram of this shard's released packets.
    pub sojourn: SojournHist,
}

/// The merged result: per-shard slices plus host-level aggregates.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Qdisc name (all shards run the same discipline).
    pub name: &'static str,
    /// Per-core slices, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Total packets released.
    pub transmitted: u64,
    /// Aggregate achieved rate in bits/s.
    pub achieved_bps: f64,
    /// Total arrivals dropped.
    pub dropped: u64,
    /// Total timer fires across cores.
    pub timer_fires: u64,
    /// Sum of per-shard median cores — the host's CPU bill.
    pub total_median_cores: f64,
    /// Peak packets inside all qdiscs combined.
    pub peak_backlog: usize,
    /// Total arrivals dropped by admission policy.
    pub admission_dropped: u64,
    /// Total arrivals ECN-marked.
    pub ecn_marked: u64,
    /// Total priority-drop evictions.
    pub evicted: u64,
    /// Emissions deferred because a stalled/squeezed shard's pending ring
    /// was full (the virtual-clock analogue of producer ring-full retries).
    pub ring_full_retries: u64,
    /// Conservation audits performed (one per fault boundary crossed, plus
    /// one at end of run). Every audit asserted
    /// `emitted = delivered + dropped + in-flight` exactly.
    pub audits: u64,
    /// Packets minted over the whole run. Conservation over report
    /// totals: `emitted = transmitted + admission_dropped + evicted +
    /// residue` exactly.
    pub emitted: u64,
    /// Packets still inside qdiscs or pending rings when the duration
    /// ended (a drained finite run reports 0).
    pub residue: u64,
    /// New-flow setups refused at the memory budget's refuse tier (the
    /// flow retries with jittered backoff).
    pub setup_refused: u64,
    /// Emissions deferred because the packet-slab charge would exceed
    /// the memory budget (retried like a full ring).
    pub mem_deferrals: u64,
    /// High-water mark of the memory ledger, bytes (0 without a budget).
    pub mem_peak: u64,
    /// Final closed-loop source state, when closed-loop sources ran.
    pub cl: Option<ClosedLoopSummary>,
}

/// Packet-level record of a run, for equivalence testing.
#[derive(Debug, Clone, Default)]
pub struct ShardTrace {
    /// `(release time, flow, bytes)` per transmitted packet, in release
    /// order (cross-flow order at equal times is shard-dependent; per-flow
    /// projections are not).
    pub releases: Vec<(Nanos, FlowId, u32)>,
    /// `(drop time, flow, per-flow arrival index)` per dropped arrival.
    pub drops: Vec<(Nanos, FlowId, u64)>,
}

impl ShardTrace {
    /// Release sequence of one flow: `(time, bytes)` in release order.
    pub fn flow_releases(&self, flow: FlowId) -> Vec<(Nanos, u32)> {
        self.releases
            .iter()
            .filter(|(_, f, _)| *f == flow)
            .map(|&(t, _, b)| (t, b))
            .collect()
    }

    /// Drop sequence of one flow: `(time, arrival index)` in drop order.
    pub fn flow_drops(&self, flow: FlowId) -> Vec<(Nanos, u64)> {
        self.drops
            .iter()
            .filter(|(_, f, _)| *f == flow)
            .map(|&(t, _, seq)| (t, seq))
            .collect()
    }
}

/// Event kinds, ordered so timers sort before sources at equal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Shard `shard`'s stall window ended: drain its pending ingress ring.
    Resume { shard: u32 },
    /// Shard `shard`'s softirq timer (epoch guards stale timers).
    Timer { shard: u32, epoch: u64 },
    /// A flow has (possibly) TSQ budget: emit its next bulk packet.
    Source(FlowId),
}

impl Ev {
    fn kind(&self) -> u8 {
        match self {
            // A resuming core first drains the ring its producers filled
            // while it was paused, then its pended timer interrupt fires.
            Ev::Resume { .. } => 0,
            Ev::Timer { .. } => 1, // softirq preempts the syscall path
            Ev::Source(_) => 2,
        }
    }
}

/// Min-heap over `(time, kind, seq)`: deterministic, shard-count-invariant
/// ordering (see the module docs).
#[derive(Debug, Default)]
struct EvHeap {
    heap: BinaryHeap<Reverse<(Nanos, u8, u64, Ev)>>,
    seq: u64,
}

impl EvHeap {
    fn schedule(&mut self, at: Nanos, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, ev.kind(), seq, ev)));
    }

    fn pop(&mut self) -> Option<(Nanos, Ev)> {
        self.heap.pop().map(|Reverse((at, _, _, ev))| (at, ev))
    }
}

/// One core's live state and its pipeline stages — crate-visible so
/// [`crate::host::run`] can assemble a `HostReport` from the 1-shard case
/// and [`crate::threaded`] can run the *same stage code* on a real OS
/// thread. [`drive`] sequences the stages under the virtual event heap; the
/// threaded shard loop sequences them under the wall clock. Neither has a
/// private copy of the enqueue/softirq logic, so the models cannot drift.
pub(crate) struct Shard<Q> {
    pub(crate) qdisc: Q,
    pub(crate) meter: CpuMeter,
    timer_epoch: u64,
    timer_armed_at: Option<Nanos>,
    pub(crate) timer_fires: u64,
    pub(crate) transmitted: u64,
    pub(crate) tx_bytes: u64,
    pub(crate) dropped: u64,
    pub(crate) peak_backlog: usize,
    pub(crate) flows: usize,
    pub(crate) admission_dropped: u64,
    pub(crate) ecn_marked: u64,
    pub(crate) evicted: u64,
    pub(crate) lat_sum_ns: u128,
    pub(crate) lat_max_ns: u64,
    pub(crate) tiers: TierCounters,
    pub(crate) sojourn: SojournHist,
}

/// Outcome of admitting one arrival at a shard's qdisc — what the caller
/// needs for TSQ/backlog bookkeeping. The shard's own admission counters
/// are updated inside [`Shard::ingress`].
pub(crate) enum IngressVerdict {
    /// Admitted.
    Queued,
    /// Admitted and ECN-marked (counter-only: the model carries the
    /// congestion *signal*, not a sender response loop).
    Marked,
    /// Refused at the door — tail drop, or priority-drop falling back on a
    /// backend without a max path. The packet was freed; the caller must
    /// refund its flow's TSQ budget (a kernel drop frees the skb).
    DroppedArrival,
    /// Admitted by evicting the worst-ranked resident; the caller must
    /// refund the *victim's* flow.
    Evicted(Packet),
}

impl<Q: ShaperQdisc> Shard<Q> {
    /// A fresh core around one qdisc instance and its CPU meter.
    pub(crate) fn new(qdisc: Q, meter: CpuMeter) -> Self {
        Shard {
            qdisc,
            meter,
            timer_epoch: 0,
            timer_armed_at: None,
            timer_fires: 0,
            transmitted: 0,
            tx_bytes: 0,
            dropped: 0,
            peak_backlog: 0,
            flows: 0,
            admission_dropped: 0,
            ecn_marked: 0,
            evicted: 0,
            lat_sum_ns: 0,
            lat_max_ns: 0,
            tiers: TierCounters::default(),
            sojourn: SojournHist::default(),
        }
    }

    /// Syscall-path stage: modelled lock + stack constants, admission
    /// decision (tightened by the memory-pressure `tier`), measured
    /// enqueue (and eviction), backlog peak bookkeeping. With
    /// [`AdmitPolicy::Unlimited`] this is exactly the pre-chaos
    /// unconditional-enqueue path; a marked admission sets the packet's
    /// ECN bit so the completion path can echo it to the source.
    pub(crate) fn ingress(
        &mut self,
        now: Nanos,
        mut pkt: Packet,
        pacing_bps: u64,
        admit: &AdmitPolicy,
        tier: DegradeTier,
    ) -> IngressVerdict {
        self.meter
            .charge(now, CpuCategory::System, LOCK_NS + PER_PACKET_STACK_NS);
        let t = tier as usize;
        let verdict = match admit.decide_tiered(self.qdisc.len(), tier) {
            Admission::Enqueue => {
                self.tiers.admitted[t] += 1;
                IngressVerdict::Queued
            }
            Admission::EnqueueMarked => {
                self.ecn_marked += 1;
                self.tiers.marked[t] += 1;
                pkt.ecn = true;
                IngressVerdict::Marked
            }
            Admission::DropArriving => {
                self.admission_dropped += 1;
                self.tiers.dropped[t] += 1;
                return IngressVerdict::DroppedArrival;
            }
            Admission::EvictWorst => {
                let Shard { meter, qdisc, .. } = self;
                let victim = meter.measure(now, CpuCategory::System, || qdisc.evict_worst());
                match victim {
                    Some(v) => {
                        self.evicted += 1;
                        self.tiers.shed[t] += 1;
                        self.tiers.admitted[t] += 1; // the arrival goes in
                        IngressVerdict::Evicted(v)
                    }
                    None => {
                        // Backend without a max path (`evict_worst`'s
                        // default): degrade to tail-dropping the arrival.
                        self.admission_dropped += 1;
                        self.tiers.dropped[t] += 1;
                        return IngressVerdict::DroppedArrival;
                    }
                }
            }
        };
        let Shard { meter, qdisc, .. } = self;
        meter.measure(now, CpuCategory::System, || {
            qdisc.enqueue(now, pkt, pacing_bps);
        });
        self.peak_backlog = self.peak_backlog.max(self.qdisc.len());
        verdict
    }

    /// Arms — or tightens, if the new deadline is earlier — the softirq
    /// timer after an arrival. Returns the deadline when (re)armed; the
    /// epoch bump invalidates any timer already in flight for this shard.
    pub(crate) fn tighten_timer(&mut self, now: Nanos) -> Option<Nanos> {
        let want = wanted_deadline(&self.qdisc, now)?.max(now);
        if self.timer_armed_at.map_or(true, |at| want < at) {
            self.timer_epoch += 1;
            self.timer_armed_at = Some(want);
            return Some(want);
        }
        None
    }

    /// Whether the armed timer's deadline has arrived — the threaded
    /// runtime's poll-side equivalent of the heap delivering a timer event.
    pub(crate) fn timer_due(&self, now: Nanos) -> bool {
        self.timer_armed_at.is_some_and(|at| now >= at)
    }

    /// Whether this event's epoch matches the live timer (stale timers
    /// never fired in hardware).
    pub(crate) fn timer_epoch_is(&self, epoch: u64) -> bool {
        self.timer_epoch == epoch
    }

    /// The live timer epoch — the jitter fault keys its per-fire seeded
    /// draw on it so both runtimes delay the same fire by the same amount.
    pub(crate) fn timer_epoch(&self) -> u64 {
        self.timer_epoch
    }

    /// Softirq stage: modelled IRQ entry, measured batched drain of
    /// everything due, transmit accounting. Clears `released` and leaves
    /// the drained packets in it for the caller's flow bookkeeping.
    pub(crate) fn softirq(&mut self, now: Nanos, batch: usize, released: &mut Vec<Packet>) {
        self.timer_armed_at = None;
        self.timer_fires += 1;
        self.meter.charge(now, CpuCategory::SoftIrq, IRQ_ENTRY_NS);
        released.clear();
        let Shard { meter, qdisc, .. } = self;
        meter.measure(now, CpuCategory::SoftIrq, || loop {
            if qdisc.dequeue_batch(now, batch, released) == 0 {
                break;
            }
        });
        for p in released.iter() {
            self.transmitted += 1;
            self.tx_bytes += p.bytes as u64;
            let sojourn = now.saturating_sub(p.created_at);
            self.lat_sum_ns += sojourn as u128;
            self.lat_max_ns = self.lat_max_ns.max(sojourn);
            self.sojourn.record(sojourn);
        }
    }

    /// Re-arms after a softirq at a strictly future deadline. Returns the
    /// deadline when armed (i.e. when the qdisc still holds packets).
    pub(crate) fn rearm(&mut self, now: Nanos) -> Option<Nanos> {
        let want = wanted_deadline(&self.qdisc, now)?.max(now + 1);
        self.timer_epoch += 1;
        self.timer_armed_at = Some(want);
        Some(want)
    }
}

/// What [`drive`] hands back before report assembly.
pub(crate) struct DriveOutcome<Q> {
    pub(crate) shards: Vec<Shard<Q>>,
    peak_total_backlog: usize,
    ring_full_retries: u64,
    audits: u64,
    emitted: u64,
    residue: u64,
    setup_refused: u64,
    mem_deferrals: u64,
    mem_peak: u64,
    cl: Option<ClosedLoopSummary>,
}

/// Deterministic seeded jitter for retry backoff: a pure function of
/// `(flow, attempt)`, so synchronized producers that hit a full ring at
/// the same instant spread their retries out instead of returning in
/// lockstep — and, being keyed on the flow rather than the shard, the
/// draw is identical at every shard count (the N-vs-1 equivalence
/// property survives).
pub(crate) fn backoff_jitter(flow: FlowId, attempt: u32, span: Nanos) -> Nanos {
    if span == 0 {
        return 0;
    }
    SplitMix64::new(0xbac0_0ff5_eed0_0000 ^ (u64::from(flow) << 20) ^ u64::from(attempt)).next_u64()
        % span
}

/// Closed-loop and memory-budget state of one run, bundled so every
/// disposal path (direct ingress, post-stall ring drains, softirq
/// releases) shares the same hooks. All hooks are cheap no-ops when
/// neither feature is configured.
struct Overload<'a> {
    params: Option<ClosedLoopParams>,
    cl: Vec<ClosedLoopSource>,
    /// Earliest next emission per flow (closed-loop pacing).
    next_allowed: Vec<Nanos>,
    mem: Option<&'a MemBudget>,
    /// Flow setup already charged (always true without a budget).
    established: Vec<bool>,
    /// Flow setup charge already released (finite flows that drained).
    freed: Vec<bool>,
    /// Per-flow retry attempts — the jitter key.
    retry_seq: Vec<u32>,
    setup_refused: u64,
    mem_deferrals: u64,
}

impl<'a> Overload<'a> {
    fn new(cfg: &'a ShardedConfig) -> Self {
        let flows = cfg.host.flows;
        let mem = cfg.mem.as_deref();
        Overload {
            params: cfg.closed_loop,
            cl: match &cfg.closed_loop {
                Some(p) => vec![ClosedLoopSource::new(p); flows],
                None => Vec::new(),
            },
            next_allowed: vec![0; if cfg.closed_loop.is_some() { flows } else { 0 }],
            mem,
            established: vec![mem.is_none(); flows],
            freed: vec![false; if mem.is_some() { flows } else { 0 }],
            retry_seq: vec![0; flows],
            setup_refused: 0,
            mem_deferrals: 0,
        }
    }

    fn tier(&self) -> DegradeTier {
        self.mem.map_or(DegradeTier::Normal, |m| m.tier())
    }

    /// Next jittered retry delay for `flow` around a base `gap`.
    fn retry_in(&mut self, flow: FlowId, gap: Nanos) -> Nanos {
        let i = flow as usize;
        self.retry_seq[i] = self.retry_seq[i].wrapping_add(1);
        let gap = gap.max(1);
        gap + backoff_jitter(flow, self.retry_seq[i], gap / 2)
    }

    /// A packet of `flow` was disposed without transmission (admission
    /// drop, or this flow's resident was shed): free its slab charge and
    /// feed the transport a loss signal.
    fn on_loss(&mut self, flow: FlowId) {
        if let Some(m) = self.mem {
            m.release(PKT_SLAB_BYTES);
        }
        if let Some(p) = &self.params {
            self.cl[flow as usize].on_loss(p);
        }
    }

    /// A packet of `flow` was transmitted: free its slab charge and echo
    /// the ECN bit to the transport.
    fn on_delivery(&mut self, flow: FlowId, marked: bool) {
        if let Some(m) = self.mem {
            m.release(PKT_SLAB_BYTES);
        }
        if let Some(p) = &self.params {
            self.cl[flow as usize].on_completion(p, marked);
        }
    }

    /// Release the flow-setup charge once a finite flow has fully
    /// drained (sent its limit and nothing remains in flight) — flow
    /// teardown, the churn that keeps the active set bounded.
    fn maybe_free_flow(&mut self, i: usize, sent: u64, limit: u64, inflight: u32) {
        let Some(m) = self.mem else { return };
        if !self.freed[i]
            && self.established[i]
            && limit != u64::MAX
            && sent >= limit
            && inflight == 0
        {
            self.freed[i] = true;
            m.release(FLOW_SETUP_BYTES);
        }
    }

    /// Run over: the sources close. Residue packets (in qdiscs and
    /// pending rings) and still-established flows hold charges the
    /// completion path can no longer return — release them here so the
    /// ledger ends at zero, mirroring the threaded producer's exit
    /// teardown.
    fn close_books(&mut self, residue: u64) {
        let Some(m) = self.mem else { return };
        m.release(PKT_SLAB_BYTES.saturating_mul(residue));
        for i in 0..self.established.len() {
            if self.established[i] && !self.freed[i] {
                self.freed[i] = true;
                m.release(FLOW_SETUP_BYTES);
            }
        }
    }

    fn summary(&self) -> Option<ClosedLoopSummary> {
        self.params.map(|_| summarize_closed_loop(&self.cl))
    }
}

/// Runs the sharded host, returning the merged report.
///
/// `mk` builds shard `i`'s qdisc instance — every shard must get the same
/// discipline and geometry (per-flow behaviour depends on it).
pub fn run_sharded<Q: ShaperQdisc>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ShardedConfig,
) -> ShardedReport {
    run_inner(mk, cfg, None)
}

/// [`run_sharded`] plus the packet-level [`ShardTrace`] — the equivalence
/// tests' entry point.
pub fn run_sharded_traced<Q: ShaperQdisc>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ShardedConfig,
) -> (ShardedReport, ShardTrace) {
    let mut trace = ShardTrace::default();
    let report = run_inner(mk, cfg, Some(&mut trace));
    (report, trace)
}

fn run_inner<Q: ShaperQdisc>(
    mk: impl FnMut(usize) -> Q,
    cfg: &ShardedConfig,
    trace: Option<&mut ShardTrace>,
) -> ShardedReport {
    let outcome = drive(mk, cfg, trace);
    let host = &cfg.host;
    let name = outcome.shards[0].qdisc.name();
    let secs = host.duration as f64 / 1e9;
    let per_shard: Vec<ShardStats> = outcome
        .shards
        .iter()
        .map(|sh| ShardStats {
            flows: sh.flows,
            transmitted: sh.transmitted,
            achieved_bps: sh.tx_bytes as f64 * 8.0 / secs,
            dropped: sh.dropped,
            timer_fires: sh.timer_fires,
            median_cores: sh.meter.median_cores(),
            peak_backlog: sh.peak_backlog,
            admission_dropped: sh.admission_dropped,
            ecn_marked: sh.ecn_marked,
            evicted: sh.evicted,
            mean_latency_ns: if sh.transmitted > 0 {
                sh.lat_sum_ns as f64 / sh.transmitted as f64
            } else {
                0.0
            },
            max_latency_ns: sh.lat_max_ns,
            tiers: sh.tiers,
            sojourn: sh.sojourn.clone(),
        })
        .collect();
    ShardedReport {
        name,
        transmitted: per_shard.iter().map(|s| s.transmitted).sum(),
        achieved_bps: per_shard.iter().map(|s| s.achieved_bps).sum(),
        dropped: per_shard.iter().map(|s| s.dropped).sum(),
        timer_fires: per_shard.iter().map(|s| s.timer_fires).sum(),
        total_median_cores: per_shard.iter().map(|s| s.median_cores).sum(),
        peak_backlog: outcome.peak_total_backlog,
        admission_dropped: per_shard.iter().map(|s| s.admission_dropped).sum(),
        ecn_marked: per_shard.iter().map(|s| s.ecn_marked).sum(),
        evicted: per_shard.iter().map(|s| s.evicted).sum(),
        ring_full_retries: outcome.ring_full_retries,
        audits: outcome.audits,
        emitted: outcome.emitted,
        residue: outcome.residue,
        setup_refused: outcome.setup_refused,
        mem_deferrals: outcome.mem_deferrals,
        mem_peak: outcome.mem_peak,
        cl: outcome.cl,
        per_shard,
    }
}

/// Conservation audit: every minted packet is transmitted, dropped by
/// admission, evicted, in a qdisc, or parked in a pending ring.
fn audit<Q: ShaperQdisc>(
    now: Nanos,
    shards: &[Shard<Q>],
    pending: &[VecDeque<Packet>],
    next_pkt_id: u64,
    total_backlog: usize,
) {
    let delivered_or_dropped: u64 = shards
        .iter()
        .map(|sh| sh.transmitted + sh.admission_dropped + sh.evicted)
        .sum();
    let in_ring: usize = pending.iter().map(|p| p.len()).sum();
    assert_eq!(
        next_pkt_id,
        delivered_or_dropped + (total_backlog + in_ring) as u64,
        "packet conservation violated at t={now}"
    );
}

/// TSQ refund for a packet the qdisc freed without transmitting (admission
/// drop or eviction): the kernel frees the skb, so the flow's budget comes
/// back immediately — and a throttled flow gets its resume callback.
fn refund(
    now: Nanos,
    flow: FlowId,
    budget: &mut [u32],
    inflight: &mut [u32],
    sent: &[u64],
    limits: &[u64],
    events: &mut EvHeap,
) {
    let i = flow as usize;
    inflight[i] -= 1;
    if budget[i] == 0 && sent[i] < limits[i] {
        events.schedule(now, Ev::Source(flow));
    }
    budget[i] += 1;
}

/// Admission + enqueue of one minted packet at its home shard, shared by
/// the direct ingress path and the post-stall ring drain. Updates the
/// host-level backlog and performs TSQ refunds for refused/evicted packets;
/// the shard's own counters are updated inside [`Shard::ingress`]. Packets
/// disposed without transmission feed the closed loop a loss signal and
/// return their slab charge to the memory budget.
#[allow(clippy::too_many_arguments)]
fn admit_one<Q: ShaperQdisc>(
    now: Nanos,
    pkt: Packet,
    sh: &mut Shard<Q>,
    per_flow_bps: u64,
    admit: &AdmitPolicy,
    budget: &mut [u32],
    inflight: &mut [u32],
    sent: &[u64],
    limits: &[u64],
    total_backlog: &mut usize,
    events: &mut EvHeap,
    ov: &mut Overload<'_>,
) {
    let flow = pkt.flow;
    match sh.ingress(now, pkt, per_flow_bps, admit, ov.tier()) {
        IngressVerdict::Queued | IngressVerdict::Marked => {
            *total_backlog += 1;
        }
        IngressVerdict::DroppedArrival => {
            ov.on_loss(flow);
            refund(now, flow, budget, inflight, sent, limits, events);
            ov.maybe_free_flow(
                flow as usize,
                sent[flow as usize],
                limits[flow as usize],
                inflight[flow as usize],
            );
        }
        IngressVerdict::Evicted(victim) => {
            // The arrival went in and the worst resident came out: the
            // backlog is net unchanged; only the victim's flow is refunded.
            let v = victim.flow;
            ov.on_loss(v);
            refund(now, v, budget, inflight, sent, limits, events);
            ov.maybe_free_flow(
                v as usize,
                sent[v as usize],
                limits[v as usize],
                inflight[v as usize],
            );
        }
    }
}

/// The one event loop behind both host models: N simulated cores under one
/// virtual clock ([`crate::host::run`] is the 1-shard case).
///
/// Fault semantics on the virtual clock (all from `cfg.chaos.plan`,
/// compiled to per-shard [`ShardFaults`]):
///
/// * **Stall**: the core is paused — arrivals park in a per-shard pending
///   ring (bounded by the squeezed ring capacity; emissions that find it
///   full back off a pacing gap without consuming budget, counted in
///   [`ShardedReport::ring_full_retries`]) and pended timer interrupts
///   deliver at stall end. An [`Ev::Resume`] drains the ring in arrival
///   order through admission when the stall lifts.
/// * **RingSqueeze**: bounds the pending ring. Outside a stall the virtual
///   consumer is infinitely fast, so a squeeze alone cannot fill the ring —
///   its bite shows when combined with stalls (and on the threaded runtime,
///   where the ring is a real SPSC queue).
/// * **TimerJitter**: a seeded extra delay added when a timer is armed —
///   same draw for the same (seed, shard, epoch) in both runtimes.
/// * **SlowConsumer**: per-released-packet CPU penalty charged to the
///   softirq meter; the next re-arm is pushed past the time the slow drain
///   would have finished.
/// * **CompletionLoss** is a threaded-runtime fault (it corrupts the real
///   completion rings); the virtual clock has no completion transport to
///   corrupt, so it is a no-op here.
///
/// Packet conservation — `minted = transmitted + admission_dropped +
/// evicted + in-qdisc + in-ring` — is asserted every time virtual time
/// crosses a fault-window boundary, and once at end of run.
pub(crate) fn drive<Q: ShaperQdisc>(
    mut mk: impl FnMut(usize) -> Q,
    cfg: &ShardedConfig,
    mut trace: Option<&mut ShardTrace>,
) -> DriveOutcome<Q> {
    let n_shards = cfg.shards.max(1);
    let host = &cfg.host;
    let flow_cap = cfg.flow_cap.map(|c| c.max(1));
    let per_flow_bps = (host.aggregate.as_bps() / host.flows as u64).max(1);
    let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps; // ns per MTU
                                                               // Source-side base emission gap: the overload knob. Defaults to the
                                                               // pacing gap (offered == shaped).
    let emit_gap = cfg.offered_gap.unwrap_or(pacing_gap).max(1);
    let batch = host.batch.max(1);
    let admit = &cfg.chaos.admit;

    // Per-flow emission limits: explicit override > uniform cap > open.
    let limits: Vec<u64> = match &cfg.pkts_override {
        Some(v) => {
            assert_eq!(v.len(), host.flows, "pkts_override length");
            v.clone()
        }
        None => vec![cfg.pkts_per_flow.unwrap_or(u64::MAX); host.flows],
    };

    let mut shards: Vec<Shard<Q>> = (0..n_shards)
        .map(|i| Shard::new(mk(i), CpuMeter::new(host.bin, host.duration)))
        .collect();

    // Compiled per-shard fault schedules and the pending ingress rings the
    // stall model parks arrivals in. All empty for a no-op plan.
    let faults: Vec<ShardFaults> = (0..n_shards).map(|s| cfg.chaos.plan.compile(s)).collect();
    let mut pending: Vec<VecDeque<Packet>> = (0..n_shards).map(|_| VecDeque::new()).collect();
    let boundaries = cfg.chaos.plan.boundaries();
    let mut next_boundary = 0usize;
    let mut ring_full_retries = 0u64;
    let mut audits = 0u64;

    // Stable flow→shard map, fixed before any packet moves.
    let home: Vec<u32> = (0..host.flows as u32)
        .map(|f| shard_of(f, n_shards) as u32)
        .collect();
    for &h in &home {
        shards[h as usize].flows += 1;
    }

    // Per-flow state: TSQ budget, in-qdisc count (for the cap), arrival
    // counter (drop indices in the trace).
    let mut budget = vec![host.tsq_budget; host.flows];
    let mut inflight = vec![0u32; host.flows];
    let mut arrivals = vec![0u64; host.flows];
    let mut sent = vec![0u64; host.flows];

    // Closed-loop transports and the memory-budget accountant (no-ops
    // unless configured on `cfg`).
    let mut ov = Overload::new(cfg);

    let mut events = EvHeap::default();
    // First emissions: explicit start times (incast waves), or staggered
    // across one pacing gap as in `host::run` — the stagger depends only on
    // the flow id and the *total* flow count, so it is identical at every
    // shard count.
    if let Some(starts) = &cfg.starts {
        assert_eq!(starts.len(), host.flows, "starts length");
        for id in 0..host.flows as u32 {
            events.schedule(starts[id as usize], Ev::Source(id));
        }
    } else {
        for id in 0..host.flows as u32 {
            let at = pacing_gap * id as u64 / host.flows as u64;
            events.schedule(at, Ev::Source(id));
        }
    }

    let mut next_pkt_id = 0u64;
    let mut total_backlog = 0usize;
    let mut peak_total_backlog = 0usize;
    let mut released: Vec<Packet> = Vec::new();

    while let Some((now, ev)) = events.pop() {
        if now >= host.duration {
            break;
        }
        // Audit at every fault-boundary crossing: the books must balance
        // exactly when a fault engages or clears.
        while boundaries.get(next_boundary).is_some_and(|&b| b <= now) {
            audit(now, &shards, &pending, next_pkt_id, total_backlog);
            audits += 1;
            next_boundary += 1;
        }
        match ev {
            Ev::Source(id) => {
                let i = id as usize;
                if budget[i] == 0 || sent[i] >= limits[i] {
                    continue; // TSQ throttled (a completion reschedules us)
                              // or the finite workload is done.
                }
                if ov.params.is_some() && now < ov.next_allowed[i] {
                    // Closed-loop pacing: the transport's congestion window
                    // says not yet. (Stray wakeups from completion refunds
                    // land here and defer to the paced slot.)
                    events.schedule(ov.next_allowed[i], Ev::Source(id));
                    continue;
                }
                if !ov.established[i] {
                    // Flow setup under a memory budget: the refuse tier (or
                    // an exhausted budget) turns new flows away at the door
                    // — the strongest degradation, taken before any packet
                    // memory is committed. Refused flows retry much later,
                    // jittered, so recovering budgets aren't stampeded.
                    let m = ov
                        .mem
                        .expect("unestablished flows only exist under a budget");
                    if m.tier() == DegradeTier::Refuse || !m.try_charge(FLOW_SETUP_BYTES) {
                        ov.setup_refused += 1;
                        let delay = ov.retry_in(id, emit_gap.saturating_mul(8));
                        events.schedule(now + delay, Ev::Source(id));
                        continue;
                    }
                    ov.established[i] = true;
                }
                let s = home[i] as usize;
                if faults[s].stalled(now)
                    && pending[s].len() >= faults[s].ring_capacity(now, usize::MAX)
                {
                    // The stalled shard's ingress ring is full: the emission
                    // itself is deferred — no budget consumed, no packet
                    // minted yet. Bounded backoff around one pacing gap,
                    // jittered per (flow, attempt) so the synchronized
                    // retries don't thunder back in lockstep.
                    ring_full_retries += 1;
                    let delay = ov.retry_in(id, emit_gap);
                    events.schedule(now + delay, Ev::Source(id));
                    continue;
                }
                arrivals[i] += 1;
                if flow_cap.is_some_and(|cap| inflight[i] >= cap) {
                    // Qdisc-full backpressure: drop and retry a gap later.
                    shards[s].dropped += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.drops.push((now, id, arrivals[i] - 1));
                    }
                    events.schedule(now + pacing_gap.max(1), Ev::Source(id));
                    continue;
                }
                if let Some(m) = ov.mem {
                    // Per-packet slab accounting: an exhausted budget defers
                    // the emission (jittered) instead of allocating — the
                    // hard guarantee that backlog memory never exceeds the
                    // budget, whatever the qdisc caps say.
                    if !m.try_charge(PKT_SLAB_BYTES) {
                        ov.mem_deferrals += 1;
                        let delay = ov.retry_in(id, emit_gap);
                        events.schedule(now + delay, Ev::Source(id));
                        continue;
                    }
                }
                budget[i] -= 1;
                inflight[i] += 1;
                sent[i] += 1;
                let pkt = Packet::mtu(next_pkt_id, id, now);
                next_pkt_id += 1;
                // Open loop: bulk sender, next packet goes straight away
                // (the qdisc paces). Closed loop: the transport paces its
                // own emissions, stretching the base gap by the inverse of
                // its congestion scale.
                let next_at = if ov.params.is_some() {
                    let at = now + ov.cl[i].gap(emit_gap).max(1);
                    ov.next_allowed[i] = at;
                    at
                } else {
                    now
                };
                if faults[s].stalled(now) {
                    // Core paused: park in the ingress ring; the first
                    // parked packet schedules the resume drain.
                    pending[s].push_back(pkt);
                    if pending[s].len() == 1 {
                        let until = faults[s].stall_until(now).expect("stalled => end");
                        events.schedule(until, Ev::Resume { shard: s as u32 });
                    }
                    if budget[i] > 0 && sent[i] < limits[i] {
                        events.schedule(next_at, Ev::Source(id));
                    }
                    continue;
                }
                admit_one(
                    now,
                    pkt,
                    &mut shards[s],
                    per_flow_bps,
                    admit,
                    &mut budget,
                    &mut inflight,
                    &sent,
                    &limits,
                    &mut total_backlog,
                    &mut events,
                    &mut ov,
                );
                peak_total_backlog = peak_total_backlog.max(total_backlog);
                if budget[i] > 0 && sent[i] < limits[i] {
                    events.schedule(next_at, Ev::Source(id));
                }
                // Arm (or tighten) this shard's timer.
                let sh = &mut shards[s];
                if let Some(want) = sh.tighten_timer(now) {
                    let at = want + faults[s].timer_extra_delay(want, sh.timer_epoch);
                    events.schedule(
                        at,
                        Ev::Timer {
                            shard: s as u32,
                            epoch: sh.timer_epoch,
                        },
                    );
                }
            }
            Ev::Resume { shard } => {
                let s = shard as usize;
                if faults[s].stalled(now) {
                    // An overlapping window extended the stall: stay parked.
                    let until = faults[s].stall_until(now).expect("stalled => end");
                    events.schedule(until, Ev::Resume { shard });
                    continue;
                }
                // Drain the ingress ring in arrival order through admission.
                while let Some(pkt) = pending[s].pop_front() {
                    admit_one(
                        now,
                        pkt,
                        &mut shards[s],
                        per_flow_bps,
                        admit,
                        &mut budget,
                        &mut inflight,
                        &sent,
                        &limits,
                        &mut total_backlog,
                        &mut events,
                        &mut ov,
                    );
                }
                peak_total_backlog = peak_total_backlog.max(total_backlog);
                let sh = &mut shards[s];
                if let Some(want) = sh.tighten_timer(now) {
                    let at = want + faults[s].timer_extra_delay(want, sh.timer_epoch);
                    events.schedule(
                        at,
                        Ev::Timer {
                            shard,
                            epoch: sh.timer_epoch,
                        },
                    );
                }
            }
            Ev::Timer { shard, epoch } => {
                let s = shard as usize;
                if faults[s].stalled(now) {
                    // The core is paused: the hrtimer interrupt pends in
                    // hardware and delivers when the core resumes.
                    if shards[s].timer_epoch_is(epoch) {
                        let until = faults[s].stall_until(now).expect("stalled => end");
                        events.schedule(until, Ev::Timer { shard, epoch });
                    }
                    continue;
                }
                let released_count;
                {
                    let sh = &mut shards[s];
                    if !sh.timer_epoch_is(epoch) {
                        continue; // superseded timer, never fired in hardware
                    }
                    sh.softirq(now, batch, &mut released);
                    released_count = released.len() as u64;
                }
                let penalty = faults[s].consumer_penalty_ns(now);
                if penalty > 0 && released_count > 0 {
                    // Slow consumer: extra per-packet CPU in softirq context.
                    shards[s].meter.charge(
                        now,
                        CpuCategory::SoftIrq,
                        eiffel_sim::WallNanos::from_nanos(penalty.saturating_mul(released_count)),
                    );
                }
                for p in released.drain(..) {
                    total_backlog -= 1;
                    let i = p.flow as usize;
                    inflight[i] -= 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.releases.push((now, p.flow, p.bytes));
                    }
                    if budget[i] == 0 && sent[i] < limits[i] {
                        // TSQ callback: the flow was throttled — resume it.
                        events.schedule(now, Ev::Source(p.flow));
                    }
                    budget[i] += 1;
                    // Completion path: the slab frees, and the transport
                    // sees the echoed ECN bit — the feedback edge of the
                    // closed loop.
                    ov.on_delivery(p.flow, p.ecn);
                    ov.maybe_free_flow(i, sent[i], limits[i], inflight[i]);
                }
                // Re-arm; a slow consumer cannot fire again before its
                // delayed drain would have finished.
                let sh = &mut shards[s];
                if let Some(want) = sh.rearm(now) {
                    let want = want.max(now + penalty.saturating_mul(released_count));
                    let at = want + faults[s].timer_extra_delay(want, sh.timer_epoch);
                    events.schedule(
                        at,
                        Ev::Timer {
                            shard,
                            epoch: sh.timer_epoch,
                        },
                    );
                }
            }
        }
    }

    // End-of-run audit: the books balance after the heap drains too.
    audit(host.duration, &shards, &pending, next_pkt_id, total_backlog);
    audits += 1;

    let in_ring: u64 = pending.iter().map(|p| p.len() as u64).sum();
    ov.close_books(total_backlog as u64 + in_ring);
    DriveOutcome {
        shards,
        peak_total_backlog,
        ring_full_retries,
        audits,
        emitted: next_pkt_id,
        residue: total_backlog as u64 + in_ring,
        setup_refused: ov.setup_refused,
        mem_deferrals: ov.mem_deferrals,
        mem_peak: cfg.mem.as_ref().map_or(0, |m| m.peak()),
        cl: ov.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eiffel::EiffelQdisc;
    use eiffel_sim::{Rate, SECOND};

    fn small_host(batch: usize) -> HostConfig {
        HostConfig {
            flows: 200,
            aggregate: Rate::mbps(240),
            duration: SECOND / 2,
            bin: SECOND / 10,
            tsq_budget: 2,
            batch,
        }
    }

    #[test]
    fn sharded_host_achieves_the_aggregate_rate() {
        for shards in [1usize, 2, 4] {
            let cfg = ShardedConfig::new(shards, small_host(1));
            let r = run_sharded(|_| EiffelQdisc::new(20_000, 100_000), &cfg);
            let want = cfg.host.aggregate.as_bps() as f64;
            let rel = (r.achieved_bps - want).abs() / want;
            assert!(
                rel < 0.05,
                "{shards} shards: {:.1} vs {:.1} Mbps",
                r.achieved_bps / 1e6,
                want / 1e6
            );
            assert_eq!(r.dropped, 0);
            assert_eq!(r.per_shard.len(), shards);
            let flows: usize = r.per_shard.iter().map(|s| s.flows).sum();
            assert_eq!(flows, cfg.host.flows, "every flow has a home shard");
        }
    }

    #[test]
    fn single_shard_matches_the_plain_host_model() {
        // `host::run` IS the 1-shard case of `drive` — the counters must
        // agree exactly (only real-time CPU metering may differ).
        let host = small_host(1);
        let plain = crate::host::run(EiffelQdisc::new(20_000, 100_000), &host);
        let sharded = run_sharded(
            |_| EiffelQdisc::new(20_000, 100_000),
            &ShardedConfig::new(1, host),
        );
        assert_eq!(plain.transmitted, sharded.transmitted);
        assert_eq!(plain.timer_fires, sharded.timer_fires);
        assert_eq!(plain.achieved_bps, sharded.achieved_bps);
    }

    #[test]
    fn flow_cap_produces_drops_and_backpressure_recovers() {
        let mut cfg = ShardedConfig::new(2, small_host(1));
        cfg.host.tsq_budget = 4; // budget above the cap ⇒ cap binds
        cfg.flow_cap = Some(1);
        let (r, trace) = run_sharded_traced(|_| EiffelQdisc::new(20_000, 100_000), &cfg);
        assert!(r.dropped > 0, "cap 1 under budget 4 must drop");
        assert_eq!(r.dropped as usize, trace.drops.len());
        // Dropped flows keep making progress (backpressure retries).
        let want = cfg.host.aggregate.as_bps() as f64;
        assert!(
            r.achieved_bps > 0.5 * want,
            "throughput collapsed: {:.1} Mbps",
            r.achieved_bps / 1e6
        );
    }

    #[test]
    fn finite_workload_sends_exactly_pkts_per_flow_and_drains() {
        let mut cfg = ShardedConfig::new(3, small_host(1));
        cfg.pkts_per_flow = Some(7);
        let (r, trace) = run_sharded_traced(|_| EiffelQdisc::new(20_000, 100_000), &cfg);
        assert_eq!(r.transmitted, 7 * cfg.host.flows as u64, "all drained");
        assert_eq!(r.dropped, 0);
        for flow in 0..cfg.host.flows as u32 {
            let rel = trace.flow_releases(flow);
            assert_eq!(rel.len(), 7, "flow {flow}");
            assert!(rel.windows(2).all(|w| w[0].0 <= w[1].0), "monotone");
        }
    }

    #[test]
    fn batched_drain_changes_no_aggregate_counters() {
        let base = run_sharded(
            |_| EiffelQdisc::new(20_000, 100_000),
            &ShardedConfig::new(2, small_host(1)),
        );
        let batched = run_sharded(
            |_| EiffelQdisc::new(20_000, 100_000),
            &ShardedConfig::new(2, small_host(16)),
        );
        assert_eq!(base.transmitted, batched.transmitted);
        assert_eq!(base.timer_fires, batched.timer_fires);
        assert_eq!(base.dropped, batched.dropped);
    }

    /// The backoff jitter is a pure function of `(flow, attempt)` — the
    /// property that keeps the virtual runtime deterministic and shard-
    /// count-invariant — and spreads synchronized retries apart.
    #[test]
    fn backoff_jitter_is_deterministic_and_spreads() {
        let span = 10_000;
        for flow in 0..32u32 {
            for attempt in 0..8u32 {
                let a = backoff_jitter(flow, attempt, span);
                assert_eq!(a, backoff_jitter(flow, attempt, span));
                assert!(a < span);
            }
        }
        assert_eq!(backoff_jitter(7, 1, 0), 0, "zero span is a no-op");
        // Synchronized producers draw distinct delays: over 64 flows at
        // the same attempt, the draws must not collapse to a few values.
        let distinct: std::collections::BTreeSet<u64> =
            (0..64u32).map(|f| backoff_jitter(f, 1, span)).collect();
        assert!(
            distinct.len() > 48,
            "only {} distinct draws",
            distinct.len()
        );
    }

    /// Overloaded host (aggregate far above what per-flow pacing drains):
    /// closed-loop sources must see ECN marks and back off, and the books
    /// must balance with the new emitted/residue fields.
    #[test]
    fn closed_loop_sources_back_off_under_ecn() {
        use eiffel_workloads::SCALE_ONE;
        let mut host = small_host(4);
        host.tsq_budget = 8;
        let mut cfg = ShardedConfig::new(2, host);
        cfg.chaos.admit = AdmitPolicy::EcnMark {
            cap: 64,
            mark_at: 8,
        };
        cfg.closed_loop = Some(ClosedLoopParams {
            initial_scale: SCALE_ONE,
            ..ClosedLoopParams::default()
        });
        // 8× overload: sources at full scale offer one packet per 1/8 of
        // the shaped pacing gap.
        let per_flow_bps = cfg.host.aggregate.as_bps() / cfg.host.flows as u64;
        let pacing_gap = 1_500 * 8 * 1_000_000_000 / per_flow_bps;
        cfg.offered_gap = Some(pacing_gap / 8);
        let r = run_sharded(|_| EiffelQdisc::new(20_000, 100_000), &cfg);
        let cl = r.cl.expect("closed loop configured");
        assert!(r.ecn_marked > 0, "overload must mark");
        assert!(
            cl.mean_scale < 1.0,
            "marked sources must back off: mean_scale {}",
            cl.mean_scale
        );
        assert!(cl.marked > 0);
        assert_eq!(
            r.emitted,
            r.transmitted + r.admission_dropped + r.evicted + r.residue,
            "closed-loop conservation"
        );
        // The sojourn histogram saw every transmitted packet.
        let recorded: u64 = r.per_shard.iter().map(|s| s.sojourn.total()).sum();
        assert_eq!(recorded, r.transmitted);
    }

    /// A tiny memory budget must walk the degradation tiers — harder
    /// marking, worst-first shedding, setup refusal — and the peak charge
    /// can never exceed the budget (`try_charge` refuses first).
    #[test]
    fn mem_budget_degrades_gracefully_and_never_overruns() {
        use eiffel_core::DegradeTier;
        let mut host = small_host(4);
        host.tsq_budget = 8;
        let mut cfg = ShardedConfig::new(2, host);
        cfg.pkts_per_flow = Some(12);
        cfg.chaos.admit = AdmitPolicy::EcnMark {
            cap: 256,
            mark_at: 64,
        };
        cfg.closed_loop = Some(ClosedLoopParams::default());
        // ~200 flows × 512B setup ≈ 100 KiB alone; a 96 KiB budget forces
        // refusals and keeps the packet slabs under pressure.
        let budget = Arc::new(MemBudget::new(96 * 1024));
        cfg.mem = Some(Arc::clone(&budget));
        let r = run_sharded(|_| EiffelQdisc::new(20_000, 100_000), &cfg);
        assert!(r.mem_peak <= budget.budget(), "hard ceiling");
        assert!(r.mem_peak > 0, "charges were taken");
        assert!(
            r.setup_refused > 0,
            "a 96 KiB budget cannot establish 200 flows at once"
        );
        assert_eq!(
            r.emitted,
            r.transmitted + r.admission_dropped + r.evicted + r.residue,
            "conservation under memory pressure"
        );
        // Higher tiers were actually consulted at admission time.
        let mut tiers = TierCounters::default();
        for s in &r.per_shard {
            tiers.merge(&s.tiers);
        }
        assert!(
            tiers.total_at(DegradeTier::Pressure)
                + tiers.total_at(DegradeTier::Shed)
                + tiers.total_at(DegradeTier::Refuse)
                > 0,
            "admission never saw a degraded tier: {tiers:?}"
        );
        assert_eq!(budget.in_use(), 0, "the ledger's books close at zero");
    }
}
