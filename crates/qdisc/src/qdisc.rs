//! The queuing-discipline interface of the kernel host model.
//!
//! A qdisc in this substrate mirrors the kernel contract the paper targets
//! (§4, "Kernel Implementation"): an `enqueue` called from the sender's
//! system-call path, a `dequeue` called from timer (softirq) context, and a
//! way to decide when the timer should next fire. The three shaping qdiscs
//! of Figure 9 — FQ/pacing, Carousel, Eiffel — implement this trait; the
//! host ([`crate::host`]) drives them identically and meters their CPU.

use eiffel_sim::{Nanos, Packet};

/// How a qdisc wants its dequeue timer driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerStyle {
    /// Arm the timer exactly at the qdisc's reported next deadline (Eiffel,
    /// FQ): "Eiffel can trigger timers exactly when needed" (§5.1.1).
    Exact,
    /// Fire every `period` nanoseconds regardless of occupancy (Carousel's
    /// timing-wheel slot clock): "a timer fires every time instant
    /// (according to the granularity of the timing wheel)".
    Periodic {
        /// The polling period (= wheel slot width).
        period: Nanos,
    },
}

/// A shaping queuing discipline.
pub trait ShaperQdisc {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Accepts a packet from the stack. `pacing_rate_bps` is the flow's
    /// `SO_MAX_PACING_RATE` (the paper keeps it in `sock.h`; the host passes
    /// it down so the qdisc needs no flow table of its own if it can avoid
    /// one).
    fn enqueue(&mut self, now: Nanos, pkt: Packet, pacing_rate_bps: u64);

    /// Releases at most one due packet (timer/softirq context). The host
    /// calls this in a loop until `None`.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;

    /// When the timer should next fire, given nothing else happens.
    /// `None` = idle (no packets pending).
    fn next_deadline(&self, now: Nanos) -> Option<Nanos>;

    /// The timer discipline this qdisc requires.
    fn timer_style(&self) -> TimerStyle;

    /// Packets currently held.
    fn len(&self) -> usize;

    /// Whether the qdisc holds no packets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
