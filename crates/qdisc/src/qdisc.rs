//! The queuing-discipline interface of the kernel host model.
//!
//! A qdisc in this substrate mirrors the kernel contract the paper targets
//! (§4, "Kernel Implementation"): an `enqueue` called from the sender's
//! system-call path, a `dequeue` called from timer (softirq) context, and a
//! way to decide when the timer should next fire. The three shaping qdiscs
//! of Figure 9 — FQ/pacing, Carousel, Eiffel — implement this trait; the
//! host ([`crate::host`]) drives them identically and meters their CPU.

use eiffel_sim::{Nanos, Packet};

/// How a qdisc wants its dequeue timer driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerStyle {
    /// Arm the timer exactly at the qdisc's reported next deadline (Eiffel,
    /// FQ): "Eiffel can trigger timers exactly when needed" (§5.1.1).
    Exact,
    /// Fire every `period` nanoseconds regardless of occupancy (Carousel's
    /// timing-wheel slot clock): "a timer fires every time instant
    /// (according to the granularity of the timing wheel)".
    Periodic {
        /// The polling period (= wheel slot width).
        period: Nanos,
    },
}

/// A shaping queuing discipline.
pub trait ShaperQdisc {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Accepts a packet from the stack. `pacing_rate_bps` is the flow's
    /// `SO_MAX_PACING_RATE` (the paper keeps it in `sock.h`; the host passes
    /// it down so the qdisc needs no flow table of its own if it can avoid
    /// one).
    fn enqueue(&mut self, now: Nanos, pkt: Packet, pacing_rate_bps: u64);

    /// Releases at most one due packet (timer/softirq context). The host
    /// calls this in a loop until `None`.
    fn dequeue(&mut self, now: Nanos) -> Option<Packet>;

    /// Accepts a burst of packets from the stack in one call, draining
    /// `pkts` in order. All packets share `pacing_rate_bps` (the host's
    /// per-flow rates are uniform; mixed-rate bursts go through
    /// [`ShaperQdisc::enqueue`] directly).
    ///
    /// The default is the enqueue loop verbatim; qdiscs whose enqueue path
    /// has amortizable work may override it.
    fn enqueue_batch(&mut self, now: Nanos, pkts: &mut Vec<Packet>, pacing_rate_bps: u64) {
        for pkt in pkts.drain(..) {
            self.enqueue(now, pkt, pacing_rate_bps);
        }
    }

    /// Releases up to `max` due packets in exactly the order repeated
    /// [`ShaperQdisc::dequeue`] calls would produce, appending them to
    /// `out`. Returns how many packets were moved.
    ///
    /// The default implementation is that loop verbatim. Bucketed qdiscs
    /// override it to amortize the eligible-min lookup across the batch
    /// (one bitmap descent per due bucket instead of per packet — the
    /// queue-layer `dequeue_batch` fast path lifted to the qdisc contract),
    /// so the host's softirq drain pays per-bucket, not per-packet, costs.
    /// Equivalence with the single-dequeue order is pinned by property test
    /// (`crates/qdisc/tests/batch_equivalence.rs`).
    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        let mut n = 0;
        while n < max {
            match self.dequeue(now) {
                Some(p) => {
                    out.push(p);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Removes and returns the packet the discipline considers *worst* —
    /// latest deadline / highest rank — for rank-aware priority-drop
    /// admission (pFabric's overflow policy, reused by the chaos
    /// harness's [`eiffel_chaos::AdmitPolicy::PriorityDrop`]).
    ///
    /// `None` means the qdisc is empty **or** has no exact max path (the
    /// default — Carousel's wheel and FQ's per-flow FIFOs would need an
    /// O(n) scan). Callers that saw `len() > 0` fall back to tail-dropping
    /// the arrival and count the fallback honestly.
    fn evict_worst(&mut self) -> Option<Packet> {
        None
    }

    /// When the timer should next fire, given nothing else happens.
    /// `None` = idle (no packets pending).
    fn next_deadline(&self, now: Nanos) -> Option<Nanos>;

    /// The timer discipline this qdisc requires.
    fn timer_style(&self) -> TimerStyle;

    /// Packets currently held.
    fn len(&self) -> usize;

    /// Whether the qdisc holds no packets.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
