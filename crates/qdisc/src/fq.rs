//! The FQ/pacing qdisc baseline — a structural reimplementation of the
//! kernel's `fq` (Dumazet's "TSO sizing and the fq scheduler", §5.1.1's
//! baseline).
//!
//! The cost profile the paper attributes to FQ is kept intact:
//! * a balanced-tree **flow table** looked up on every enqueue (the kernel
//!   keeps RB-trees of flows per hash bucket; here one `BTreeMap`, the Rust
//!   balanced ordered tree);
//! * a balanced-tree **delayed set** ordered by each flow's next
//!   transmission time, with an insert + remove around every paced packet
//!   ("it relies on RB-trees which increases the overhead of reordering
//!   flows on every enqueue and dequeue");
//! * **garbage collection** of idle flow state amortized over enqueues
//!   ("keeps track internally of active and inactive flows and requires
//!   continuous garbage collection").

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use eiffel_sim::{FlowId, Nanos, Packet};

use crate::qdisc::{ShaperQdisc, TimerStyle};

struct FqFlow {
    fifo: VecDeque<Packet>,
    /// Earliest time the flow's next packet may leave (pacing).
    time_next_packet: Nanos,
    /// Pacing rate cached from the socket.
    rate_bps: u64,
    /// Last activity, for garbage collection.
    last_seen: Nanos,
    /// Whether the flow sits in `active` (credit to send) — guards against
    /// double-queueing.
    in_active: bool,
    /// Whether the flow sits in `delayed`.
    in_delayed: bool,
}

/// The FQ/pacing qdisc.
pub struct FqQdisc {
    /// RB-tree stand-in: ordered flow table.
    flows: BTreeMap<FlowId, FqFlow>,
    /// Flows eligible to transmit now, round-robin.
    active: VecDeque<FlowId>,
    /// Flows waiting for their pacing timestamp, ordered by it.
    delayed: BTreeSet<(Nanos, FlowId)>,
    /// Amortized GC cursor and cadence.
    gc_cursor: FlowId,
    enqueues_since_gc: u32,
    len: usize,
    /// Flows reclaimed by GC (observability).
    pub gc_reclaimed: u64,
}

/// Run a GC scan every this many enqueues…
const GC_PERIOD: u32 = 64;
/// …visiting this many flows per scan.
const GC_SCAN: usize = 8;
/// Idle time after which an empty flow's state is reclaimed.
const GC_IDLE_NS: Nanos = 3_000_000_000;

impl FqQdisc {
    /// An empty FQ qdisc.
    pub fn new() -> Self {
        FqQdisc {
            flows: BTreeMap::new(),
            active: VecDeque::new(),
            delayed: BTreeSet::new(),
            gc_cursor: 0,
            enqueues_since_gc: 0,
            len: 0,
            gc_reclaimed: 0,
        }
    }

    /// Number of flows currently tracked (including idle, not yet GC'd).
    pub fn tracked_flows(&self) -> usize {
        self.flows.len()
    }

    fn gc(&mut self, now: Nanos) {
        // Scan a few flows past the cursor, reclaiming long-idle empty ones.
        let mut doomed: Vec<FlowId> = Vec::new();
        let mut seen = 0;
        for (&id, f) in self.flows.range(self.gc_cursor..) {
            if seen >= GC_SCAN {
                break;
            }
            seen += 1;
            self.gc_cursor = id.wrapping_add(1);
            if f.fifo.is_empty()
                && !f.in_active
                && !f.in_delayed
                && now.saturating_sub(f.last_seen) > GC_IDLE_NS
            {
                doomed.push(id);
            }
        }
        if seen < GC_SCAN {
            self.gc_cursor = 0; // wrapped
        }
        for id in doomed {
            self.flows.remove(&id);
            self.gc_reclaimed += 1;
        }
    }

    /// Promote delayed flows whose pacing time has arrived.
    fn refill_active(&mut self, now: Nanos) {
        while let Some(&(ts, id)) = self.delayed.iter().next() {
            if ts > now {
                break;
            }
            self.delayed.remove(&(ts, id));
            let f = self.flows.get_mut(&id).expect("delayed flows are tracked");
            f.in_delayed = false;
            f.in_active = true;
            self.active.push_back(id);
        }
    }
}

impl Default for FqQdisc {
    fn default() -> Self {
        Self::new()
    }
}

impl ShaperQdisc for FqQdisc {
    fn name(&self) -> &'static str {
        "fq"
    }

    fn enqueue(&mut self, now: Nanos, pkt: Packet, pacing_rate_bps: u64) {
        self.enqueues_since_gc += 1;
        if self.enqueues_since_gc >= GC_PERIOD {
            self.enqueues_since_gc = 0;
            self.gc(now);
        }
        let id = pkt.flow;
        let f = self.flows.entry(id).or_insert_with(|| FqFlow {
            fifo: VecDeque::new(),
            time_next_packet: 0,
            rate_bps: pacing_rate_bps,
            last_seen: now,
            in_active: false,
            in_delayed: false,
        });
        f.rate_bps = pacing_rate_bps;
        f.last_seen = now;
        f.fifo.push_back(pkt);
        self.len += 1;
        if !f.in_active && !f.in_delayed {
            if f.time_next_packet <= now {
                f.in_active = true;
                self.active.push_back(id);
            } else {
                f.in_delayed = true;
                self.delayed.insert((f.time_next_packet, id));
            }
        }
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        self.refill_active(now);
        let id = self.active.pop_front()?;
        let f = self.flows.get_mut(&id).expect("active flows are tracked");
        f.in_active = false;
        let pkt = f.fifo.pop_front().expect("active flows hold packets");
        self.len -= 1;
        // Advance the flow's pacing clock.
        let wire_ns = (pkt.bytes as u64 * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(f.rate_bps)
            .unwrap_or(0);
        f.time_next_packet = now.max(f.time_next_packet) + wire_ns;
        f.last_seen = now;
        if !f.fifo.is_empty() {
            if f.time_next_packet <= now {
                f.in_active = true;
                self.active.push_back(id);
            } else {
                f.in_delayed = true;
                self.delayed.insert((f.time_next_packet, id));
            }
        }
        Some(pkt)
    }

    fn next_deadline(&self, now: Nanos) -> Option<Nanos> {
        if !self.active.is_empty() {
            return Some(now);
        }
        self.delayed.iter().next().map(|&(ts, _)| ts)
    }

    fn timer_style(&self) -> TimerStyle {
        TimerStyle::Exact
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(id: u64, flow: FlowId) -> Packet {
        Packet::mtu(id, flow, 0)
    }

    #[test]
    fn paces_a_flow_at_its_socket_rate() {
        let mut q = FqQdisc::new();
        // 12 Mbps → 1 ms per MTU.
        for i in 0..3 {
            q.enqueue(0, pkt(i, 1), 12_000_000);
        }
        assert_eq!(q.dequeue(0).unwrap().id, 0);
        assert!(q.dequeue(0).is_none(), "second packet paced");
        assert_eq!(q.next_deadline(0), Some(1_000_000));
        assert!(q.dequeue(999_999).is_none());
        assert_eq!(q.dequeue(1_000_000).unwrap().id, 1);
        assert_eq!(q.dequeue(2_000_000).unwrap().id, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn fair_round_robin_between_unpaced_flows() {
        let mut q = FqQdisc::new();
        for i in 0..3 {
            q.enqueue(0, pkt(i, 1), 0); // rate 0 = unpaced
            q.enqueue(0, pkt(10 + i, 2), 0);
        }
        let flows: Vec<FlowId> = std::iter::from_fn(|| q.dequeue(0).map(|p| p.flow)).collect();
        assert_eq!(flows, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn gc_reclaims_idle_flows() {
        let mut q = FqQdisc::new();
        // 1000 one-packet flows, drained immediately.
        for f in 0..1_000u32 {
            q.enqueue(0, pkt(f as u64, f), 0);
        }
        while q.dequeue(0).is_some() {}
        assert_eq!(q.tracked_flows(), 1_000);
        // Much later, fresh traffic triggers periodic GC sweeps.
        let much_later = 10_000_000_000;
        for i in 0..20_000u64 {
            q.enqueue(much_later + i, pkt(i, 2_000), 0);
            q.dequeue(much_later + i);
        }
        assert!(
            q.gc_reclaimed > 900,
            "idle flows reclaimed, got {}",
            q.gc_reclaimed
        );
        assert!(q.tracked_flows() < 100);
    }

    #[test]
    fn delayed_flows_wake_in_deadline_order() {
        let mut q = FqQdisc::new();
        // Flow 1 at 12 Mbps, flow 2 at 24 Mbps; both send 2 packets at t=0.
        for f in [1u32, 2] {
            let rate = if f == 1 { 12_000_000 } else { 24_000_000 };
            q.enqueue(0, pkt(f as u64 * 10, f), rate);
            q.enqueue(0, pkt(f as u64 * 10 + 1, f), rate);
        }
        // First packets of both flows go now.
        assert!(q.dequeue(0).is_some());
        assert!(q.dequeue(0).is_some());
        // Flow 2's second packet (0.5 ms) precedes flow 1's (1 ms).
        assert_eq!(q.next_deadline(0), Some(500_000));
        assert_eq!(q.dequeue(500_000).unwrap().flow, 2);
        assert_eq!(q.dequeue(1_000_000).unwrap().flow, 1);
    }
}
