//! The Eiffel shaping qdisc — §5.1.1's system under test.
//!
//! "We implemented Eiffel as a qdisc. The queue is configured with 20k
//! buckets with a maximum horizon of 2 seconds and only the shaper is used.
//! We modified only sock.h to keep the state of each socket allowing us to
//! avoid having to keep track of each flow in the qdisc."
//!
//! Per-socket timestamping (the `sock.h` modification) lives in a per-flow
//! clock map standing in for socket state; the queue is one cFFS. Unlike
//! the timing wheel, the cFFS answers `SoonestDeadline()` in O(1) word ops,
//! so the host timer is armed *exactly* — the source of the Figure 10
//! softirq gap.

use std::collections::HashMap;

use eiffel_core::{CffsQueue, RankedQueue};
use eiffel_sim::{FlowId, Nanos, Packet};

use crate::qdisc::{ShaperQdisc, TimerStyle};

/// Eiffel's shaping qdisc: per-socket stamps + a cFFS.
pub struct EiffelQdisc {
    queue: CffsQueue<Packet>,
    /// Per-socket shaper clock ("sock.h" state).
    next_eligible: HashMap<FlowId, Nanos>,
    /// Scratch for the batched dequeue path (ranks are discarded; the
    /// buffer is reused so batching never allocates per call).
    batch_scratch: Vec<(Nanos, Packet)>,
}

impl EiffelQdisc {
    /// The paper's configuration: 20k buckets, 2-second horizon
    /// (100 µs granularity per bucket, 20k buckets per window half).
    pub fn paper_config() -> Self {
        Self::new(20_000, 100_000)
    }

    /// Custom geometry: `buckets` buckets of `granularity` ns per half.
    pub fn new(buckets: usize, granularity: Nanos) -> Self {
        EiffelQdisc {
            queue: CffsQueue::new(buckets, granularity, 0),
            next_eligible: HashMap::new(),
            batch_scratch: Vec::new(),
        }
    }

    fn stamp(&mut self, now: Nanos, flow: FlowId, bytes: u64, rate_bps: u64) -> Nanos {
        let clock = self.next_eligible.entry(flow).or_insert(0);
        let release = (*clock).max(now);
        let wire_ns = (bytes * 8)
            .saturating_mul(1_000_000_000)
            .checked_div(rate_bps)
            .unwrap_or(0);
        *clock = release + wire_ns;
        release
    }
}

impl ShaperQdisc for EiffelQdisc {
    fn name(&self) -> &'static str {
        "eiffel"
    }

    fn enqueue(&mut self, now: Nanos, pkt: Packet, pacing_rate_bps: u64) {
        let ts = self.stamp(now, pkt.flow, pkt.bytes as u64, pacing_rate_bps);
        self.queue
            .enqueue(ts, pkt)
            .unwrap_or_else(|_| unreachable!("cFFS clamps instead of refusing"));
    }

    fn dequeue(&mut self, now: Nanos) -> Option<Packet> {
        // Fused peek+pop: one bitmap descent per released packet.
        self.queue.dequeue_min_le(now).map(|(_, p)| p)
    }

    fn dequeue_batch(&mut self, now: Nanos, max: usize, out: &mut Vec<Packet>) -> usize {
        // The cFFS due-drain fast path: one bitmap descent per due bucket,
        // O(1) FIFO pops within it — same release order as repeated
        // `dequeue`, proven by property test.
        self.batch_scratch.clear();
        let n = self
            .queue
            .dequeue_le_batch(now, max, &mut self.batch_scratch);
        out.extend(self.batch_scratch.drain(..).map(|(_, p)| p));
        n
    }

    fn evict_worst(&mut self) -> Option<Packet> {
        // Latest-deadline packet, exactly (cFFS `ExtractMax`). The evicted
        // flow's socket clock is *not* refunded: the wire time was already
        // reserved at stamp time, matching a kernel drop after stamping.
        self.queue.dequeue_max().map(|(_, p)| p)
    }

    fn next_deadline(&self, _now: Nanos) -> Option<Nanos> {
        // SoonestDeadline(): O(1) on the cFFS bitmap hierarchy (§4).
        self.queue.peek_min_rank()
    }

    fn timer_style(&self) -> TimerStyle {
        TimerStyle::Exact
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paces_at_socket_rate_with_bucket_granularity() {
        let mut q = EiffelQdisc::new(20_000, 100_000);
        // 12 Mbps → 1 ms per MTU; bucket = 100 µs.
        for i in 0..3 {
            q.enqueue(0, Packet::mtu(i, 1, 0), 12_000_000);
        }
        assert_eq!(q.dequeue(0).unwrap().id, 0);
        assert!(q.dequeue(899_999).is_none());
        // Bucket edge of the 1 ms deadline is exactly 1 ms here.
        assert_eq!(q.next_deadline(0), Some(1_000_000));
        assert_eq!(q.dequeue(1_000_000).unwrap().id, 1);
        assert_eq!(q.dequeue(2_000_000).unwrap().id, 2);
        assert!(q.is_empty());
        assert_eq!(q.next_deadline(0), None);
    }

    #[test]
    fn exact_timer_style() {
        assert_eq!(EiffelQdisc::paper_config().timer_style(), TimerStyle::Exact);
    }

    #[test]
    fn agrees_with_carousel_on_release_times() {
        // Same stamping logic, different structure: over a smooth workload
        // both shapers must release the same packets at (bucket/slot
        // granularity of) the same times.
        use crate::carousel::CarouselQdisc;
        let gran = 1_000;
        let mut e = EiffelQdisc::new(1 << 16, gran);
        let mut c = CarouselQdisc::new(1 << 16, gran);
        for i in 0..200u64 {
            let flow = (i % 10) as FlowId;
            e.enqueue(0, Packet::mtu(i, flow, 0), 120_000_000);
            c.enqueue(0, Packet::mtu(i, flow, 0), 120_000_000);
        }
        let mut now = 0;
        let mut es: Vec<u64> = Vec::new();
        let mut cs: Vec<u64> = Vec::new();
        while es.len() < 200 || cs.len() < 200 {
            while let Some(p) = e.dequeue(now) {
                es.push(p.id);
            }
            while let Some(p) = c.dequeue(now) {
                cs.push(p.id);
            }
            now += gran;
            assert!(now < 1_000_000_000, "drain must finish");
        }
        assert_eq!(es, cs, "identical shaping behaviour (the paper's premise)");
    }
}
