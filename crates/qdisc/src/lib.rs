//! # eiffel-qdisc — the kernel shaping use case (paper §5.1.1)
//!
//! Three shaping queuing disciplines under one host model:
//!
//! * [`FqQdisc`] — the FQ/pacing baseline (balanced-tree flow table,
//!   balanced-tree delayed set, flow garbage collection);
//! * [`CarouselQdisc`] — the Carousel baseline (per-socket timestamps into
//!   a Timing Wheel, timer fires every slot);
//! * [`EiffelQdisc`] — per-socket timestamps into a cFFS, timer armed
//!   exactly at `SoonestDeadline()` (20k buckets / 2 s horizon in the
//!   paper's configuration).
//!
//! [`host::run`] drives any of them with the 20k-flow neper-like workload
//! and meters real data-structure CPU into virtual-time bins — the
//! regeneration path for Figures 9 and 10. [`sharded::run_sharded`] scales
//! the same workload across N simulated cores (one qdisc instance each,
//! stable flow→shard hashing, batched softirq drains) and merges the
//! per-core meters into one [`sharded::ShardedReport`].
//! [`threaded::run_threaded`] runs those same shards as real OS threads —
//! one qdisc + softirq timer per thread, fed over lock-free SPSC rings on
//! the wall clock, sharing the virtual-clock host's stage code — the
//! measurement path for Figure 9's cores-to-shape comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod carousel;
pub mod eiffel;
pub mod fq;
pub mod host;
pub mod qdisc;
pub mod ranked;
pub mod sharded;
pub mod threaded;

pub use carousel::CarouselQdisc;
pub use eiffel::EiffelQdisc;
pub use fq::FqQdisc;
pub use host::{run, HostConfig, HostReport};
pub use qdisc::{ShaperQdisc, TimerStyle};
pub use ranked::{backend_label, RankedShaperQdisc};
pub use sharded::{
    run_sharded, run_sharded_traced, ShardStats, ShardTrace, ShardedConfig, ShardedReport,
    SojournHist, TierCounters,
};
pub use threaded::{
    run_threaded, run_threaded_traced, ChaosReport, Completion, CompletionKind, CtrlMsg,
    ThreadedConfig, ThreadedReport, ThreadedTrace,
};
