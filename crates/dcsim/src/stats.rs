//! Flow-completion-time statistics — the Figure 19 panels.
//!
//! The paper reports FCT normalized to "the FCT a flow would achieve at
//! access line rate with no contention", split by flow size: average for
//! (0, 100 kB], 99th percentile for (0, 100 kB], and average for
//! (10 MB, ∞).

use eiffel_sim::Nanos;

/// One completed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FctRecord {
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Measured flow completion time.
    pub fct: Nanos,
    /// Ideal (uncontended line-rate) completion time.
    pub ideal: Nanos,
}

impl FctRecord {
    /// FCT divided by ideal FCT (≥ 1 up to clock granularity).
    pub fn normalized(&self) -> f64 {
        self.fct as f64 / self.ideal.max(1) as f64
    }
}

/// Small-flow boundary (0, 100 kB].
pub const SMALL_BYTES: u64 = 100 * 1_024;
/// Large-flow boundary (10 MB, ∞).
pub const LARGE_BYTES: u64 = 10 * 1_024 * 1_024;

/// Aggregated normalized-FCT statistics.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Average normalized FCT, flows ≤ 100 kB.
    pub avg_small: Option<f64>,
    /// 99th-percentile normalized FCT, flows ≤ 100 kB.
    pub p99_small: Option<f64>,
    /// Average normalized FCT, flows > 10 MB.
    pub avg_large: Option<f64>,
    /// Average normalized FCT, all flows.
    pub avg_all: Option<f64>,
    /// Count of small flows.
    pub n_small: usize,
    /// Count of large flows.
    pub n_large: usize,
    /// Count of all flows.
    pub n_all: usize,
}

fn avg(v: &[f64]) -> Option<f64> {
    if v.is_empty() {
        None
    } else {
        Some(v.iter().sum::<f64>() / v.len() as f64)
    }
}

fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Some(sorted[idx])
}

impl Summary {
    /// Builds the Figure 19 panels from per-flow records.
    pub fn from_records(records: &[FctRecord]) -> Self {
        let mut small: Vec<f64> = Vec::new();
        let mut large: Vec<f64> = Vec::new();
        let mut all: Vec<f64> = Vec::new();
        for r in records {
            let n = r.normalized();
            all.push(n);
            if r.size_bytes <= SMALL_BYTES {
                small.push(n);
            } else if r.size_bytes > LARGE_BYTES {
                large.push(n);
            }
        }
        small.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Summary {
            avg_small: avg(&small),
            p99_small: percentile(&small, 0.99),
            avg_large: avg(&large),
            avg_all: avg(&all),
            n_small: small.len(),
            n_large: large.len(),
            n_all: all.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size_bytes: u64, norm: u64) -> FctRecord {
        FctRecord {
            size_bytes,
            fct: norm * 1_000,
            ideal: 1_000,
        }
    }

    #[test]
    fn buckets_split_by_size() {
        let records = vec![
            rec(10_000, 2),
            rec(50_000, 4),
            rec(200_000, 8),            // mid: neither small nor large
            rec(20 * 1_024 * 1_024, 6), // large
        ];
        let s = Summary::from_records(&records);
        assert_eq!(s.n_small, 2);
        assert_eq!(s.n_large, 1);
        assert_eq!(s.n_all, 4);
        assert_eq!(s.avg_small, Some(3.0));
        assert_eq!(s.avg_large, Some(6.0));
        assert_eq!(s.avg_all, Some(5.0));
    }

    #[test]
    fn p99_picks_the_tail() {
        let mut records: Vec<FctRecord> = (1..=100).map(|i| rec(1_000, i)).collect();
        records.reverse(); // order must not matter
        let s = Summary::from_records(&records);
        assert_eq!(s.p99_small, Some(99.0));
    }

    #[test]
    fn empty_is_all_none() {
        let s = Summary::from_records(&[]);
        assert!(s.avg_small.is_none());
        assert!(s.p99_small.is_none());
        assert!(s.avg_large.is_none());
        assert_eq!(s.n_all, 0);
    }

    #[test]
    fn normalized_is_fct_over_ideal() {
        let r = FctRecord {
            size_bytes: 1,
            fct: 3_000,
            ideal: 1_500,
        };
        assert!((r.normalized() - 2.0).abs() < 1e-12);
    }
}
