//! The event-driven fabric simulation for Figure 19.
//!
//! Ties together: leaf-spine [`Topology`], per-port [`PortQueue`]s, DCTCP /
//! pFabric [`transport`](crate::transport) state machines, web-search flow
//! sizes under Poisson arrivals, and flow-completion-time recording.
//!
//! Simplifications relative to the authors' ns-2 setup, chosen to preserve
//! the comparison (identical across the three systems; see DESIGN.md):
//! ACKs are delivered after the path's uncontended reverse latency instead
//! of traversing queues (ACK load ≲ 3% and pFabric gives ACKs the highest
//! priority anyway), and ECMP hashes per flow rather than per packet.

use eiffel_sim::{EventQueue, Nanos, SplitMix64};
use eiffel_workloads::{FlowSizeDist, PoissonArrivals};

use crate::frame::{Frame, MTU_BYTES};
use crate::queues::{PfabricVariant, PortQueue, Verdict};
use crate::stats::{FctRecord, Summary};
use crate::topology::{Topology, PROP_DELAY};
use crate::transport::{Dctcp, PfabricTx};

/// Which system the fabric runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// DCTCP over ECN-marking drop-tail queues.
    Dctcp,
    /// pFabric with exact priority queues.
    PfabricExact,
    /// pFabric with approximate gradient priority queues.
    PfabricApprox,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The fabric.
    pub topo: Topology,
    /// System under test.
    pub system: System,
    /// Offered load as a fraction of aggregate edge capacity (0, 1].
    pub load: f64,
    /// Number of flow arrivals to simulate.
    pub flows: usize,
    /// RNG seed (fixes sizes, endpoints, arrival times).
    pub seed: u64,
    /// DCTCP marking threshold on edge ports, packets (fabric ports 4×).
    pub dctcp_k: usize,
    /// pFabric per-port buffer, packets.
    pub pfabric_buf: usize,
    /// DCTCP min RTO.
    pub dctcp_rto: Nanos,
    /// pFabric RTO (paper: a small multiple of the fabric RTT).
    pub pfabric_rto: Nanos,
    /// Safety valve: stop after this many events (0 = unlimited).
    pub max_events: u64,
}

impl SimConfig {
    /// Defaults mirroring the paper's setup on a given topology.
    pub fn new(topo: Topology, system: System, load: f64, flows: usize, seed: u64) -> Self {
        let rtt = topo.base_rtt();
        SimConfig {
            topo,
            system,
            load,
            flows,
            seed,
            dctcp_k: 65,
            pfabric_buf: (2 * topo.bdp_packets() as usize).max(24),
            dctcp_rto: 5_000_000, // 5 ms (a scaled stand-in for min_RTO)
            pfabric_rto: 3 * rtt.max(10_000),
            max_events: 2_000_000_000,
        }
    }
}

/// Per-flow transport state.
enum Tx {
    Dctcp(Dctcp),
    Pfabric(PfabricTx),
}

struct Flow {
    /// Endpoints, kept for trace inspection and future per-pair stats.
    #[allow(dead_code)]
    src: usize,
    #[allow(dead_code)]
    dst: usize,
    size: u32,
    path: Vec<usize>,
    start: Nanos,
    finish: Option<Nanos>,
    tx: Tx,
    /// Receiver state: next expected (DCTCP) or received bitmap (pFabric).
    rcv_nxt: u32,
    rcv_seen: Vec<bool>,
    rcv_count: u32,
    rto_epoch: u64,
    rto_armed: bool,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The `i`-th flow arrives.
    Arrive(u32),
    /// Port finished serializing its current frame.
    PortFree(u32),
    /// Frame reaches the input of port `path[hop]` of its flow.
    EnterPort { frame: Frame, hop: u8 },
    /// Frame reaches the destination host.
    Receive(Frame),
    /// ACK reaches the sender.
    Ack {
        flow: u32,
        seq: u32,
        cum: u32,
        ce: bool,
    },
    /// Retransmission timer.
    Rto { flow: u32, epoch: u64 },
}

/// Counters reported alongside FCT statistics.
#[derive(Debug, Clone, Default)]
pub struct SimCounters {
    /// Frames dropped (tail drop or priority eviction).
    pub drops: u64,
    /// Frames delivered to receivers.
    pub delivered: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// Events processed.
    pub events: u64,
    /// Flows that completed.
    pub completed: usize,
}

/// Full result of one run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-completed-flow records.
    pub records: Vec<FctRecord>,
    /// The three Figure 19 panels (and extras).
    pub summary: Summary,
    /// Operational counters.
    pub counters: SimCounters,
}

struct Sim {
    cfg: SimConfig,
    events: EventQueue<Ev>,
    flows: Vec<Flow>,
    ports: Vec<PortQueue>,
    port_busy: Vec<Option<Frame>>,
    counters: SimCounters,
}

impl Sim {
    fn new(cfg: SimConfig) -> Self {
        let topo = cfg.topo;
        let mut ports = Vec::with_capacity(topo.ports());
        for p in 0..topo.ports() {
            let q = match cfg.system {
                System::Dctcp => {
                    let k = if topo.port_rate(p) == topo.edge {
                        cfg.dctcp_k
                    } else {
                        cfg.dctcp_k * 4
                    };
                    PortQueue::dctcp(k)
                }
                System::PfabricExact => PortQueue::pfabric(PfabricVariant::Exact, cfg.pfabric_buf),
                System::PfabricApprox => {
                    PortQueue::pfabric(PfabricVariant::Approx, cfg.pfabric_buf)
                }
            };
            ports.push(q);
        }
        let n_ports = ports.len();
        Sim {
            cfg,
            events: EventQueue::new(),
            flows: Vec::new(),
            ports,
            port_busy: (0..n_ports).map(|_| None).collect(),
            counters: SimCounters::default(),
        }
    }

    /// If `port` is idle and has queued frames, start serializing one.
    fn try_start(&mut self, now: Nanos, port: usize) {
        if self.port_busy[port].is_some() {
            return;
        }
        let Some(frame) = self.ports[port].dequeue() else {
            return;
        };
        let tx = self
            .cfg
            .topo
            .port_rate(port)
            .tx_time(frame.bytes as u64)
            .expect("links have non-zero rates");
        self.port_busy[port] = Some(frame);
        self.events.schedule(now + tx, Ev::PortFree(port as u32));
    }

    /// Sends whatever the flow's window allows into its NIC port.
    fn pump(&mut self, now: Nanos, fid: u32) {
        let nic = self.flows[fid as usize].path[0];
        loop {
            let f = &mut self.flows[fid as usize];
            let frame = match &mut f.tx {
                Tx::Dctcp(t) => {
                    if !t.can_send(f.size) {
                        break;
                    }
                    let seq = t.take_next();
                    Frame::data(fid, seq, 0)
                }
                Tx::Pfabric(t) => {
                    let Some(seq) = t.take_next(f.size) else {
                        break;
                    };
                    let mut fr = Frame::data(fid, seq, 0);
                    fr.rank = t.remaining(f.size);
                    fr
                }
            };
            match self.ports[nic].enqueue(frame) {
                Verdict::Queued => {}
                Verdict::Dropped(_) => self.counters.drops += 1,
            }
            self.try_start(now, nic);
        }
        self.arm_rto(now, fid);
    }

    fn arm_rto(&mut self, now: Nanos, fid: u32) {
        let f = &mut self.flows[fid as usize];
        let outstanding = match &f.tx {
            Tx::Dctcp(t) => t.snd_nxt > t.snd_una && !t.done(f.size),
            Tx::Pfabric(t) => !t.outstanding.is_empty() && !t.done(f.size),
        };
        if !outstanding {
            f.rto_epoch += 1; // cancels any pending timer
            f.rto_armed = false;
            return;
        }
        if f.rto_armed {
            return;
        }
        let (base, backoff) = match &f.tx {
            Tx::Dctcp(t) => (self.cfg.dctcp_rto, t.backoff as u64),
            Tx::Pfabric(t) => (self.cfg.pfabric_rto, t.backoff as u64),
        };
        f.rto_epoch += 1;
        f.rto_armed = true;
        let epoch = f.rto_epoch;
        self.events
            .schedule(now + base * backoff, Ev::Rto { flow: fid, epoch });
    }

    fn handle(&mut self, now: Nanos, ev: Ev) {
        match ev {
            Ev::Arrive(fid) => self.pump(now, fid),
            Ev::PortFree(port) => {
                let port = port as usize;
                let frame = self.port_busy[port]
                    .take()
                    .expect("PortFree only after start");
                let f = &self.flows[frame.flow as usize];
                let hop = f
                    .path
                    .iter()
                    .position(|&p| p == port)
                    .expect("frames travel their flow's path");
                if hop + 1 < f.path.len() {
                    self.events.schedule(
                        now + PROP_DELAY,
                        Ev::EnterPort {
                            frame,
                            hop: hop as u8 + 1,
                        },
                    );
                } else {
                    self.events.schedule(now + PROP_DELAY, Ev::Receive(frame));
                }
                self.try_start(now, port);
            }
            Ev::EnterPort { frame, hop } => {
                let port = self.flows[frame.flow as usize].path[hop as usize];
                match self.ports[port].enqueue(frame) {
                    Verdict::Queued => {}
                    Verdict::Dropped(_) => self.counters.drops += 1,
                }
                self.try_start(now, port);
            }
            Ev::Receive(frame) => {
                self.counters.delivered += 1;
                let fid = frame.flow;
                let hops = self.flows[fid as usize].path.len();
                let ack_latency = self.cfg.topo.base_one_way(hops, 40);
                let f = &mut self.flows[fid as usize];
                let (cum, seq) = match &f.tx {
                    Tx::Dctcp(_) => {
                        if frame.seq == f.rcv_nxt {
                            f.rcv_nxt += 1;
                        }
                        (f.rcv_nxt, frame.seq)
                    }
                    Tx::Pfabric(_) => {
                        let slot = &mut f.rcv_seen[frame.seq as usize];
                        if !*slot {
                            *slot = true;
                            f.rcv_count += 1;
                        }
                        (f.rcv_count, frame.seq)
                    }
                };
                // Receiver-side completion: all data has arrived.
                let complete = match &f.tx {
                    Tx::Dctcp(_) => f.rcv_nxt >= f.size,
                    Tx::Pfabric(_) => f.rcv_count >= f.size,
                };
                if complete && f.finish.is_none() {
                    f.finish = Some(now);
                    self.counters.completed += 1;
                }
                self.events.schedule(
                    now + ack_latency,
                    Ev::Ack {
                        flow: fid,
                        seq,
                        cum,
                        ce: frame.ce,
                    },
                );
            }
            Ev::Ack { flow, seq, cum, ce } => {
                let f = &mut self.flows[flow as usize];
                let progressed = match &mut f.tx {
                    Tx::Dctcp(t) => t.on_ack(cum, ce),
                    Tx::Pfabric(t) => t.on_ack(seq),
                };
                if progressed {
                    // Fresh progress: re-arm the timer from now.
                    f.rto_epoch += 1;
                    f.rto_armed = false;
                }
                self.pump(now, flow);
            }
            Ev::Rto { flow, epoch } => {
                let f = &mut self.flows[flow as usize];
                if epoch != f.rto_epoch {
                    return; // cancelled or superseded
                }
                f.rto_armed = false;
                self.counters.timeouts += 1;
                match &mut f.tx {
                    Tx::Dctcp(t) => t.on_timeout(),
                    Tx::Pfabric(t) => t.on_timeout(),
                }
                self.pump(now, flow);
            }
        }
    }
}

/// Runs the configured simulation to completion.
pub fn run(cfg: SimConfig) -> SimResult {
    let topo = cfg.topo;
    let mut rng = SplitMix64::new(cfg.seed);
    let cdf = FlowSizeDist::WebSearch.cdf();
    let mean_bytes = FlowSizeDist::WebSearch.mean_bytes();
    let agg = eiffel_sim::Rate::bps(topo.edge.as_bps() * topo.hosts() as u64);
    let mut arrivals = PoissonArrivals::for_load(cfg.load, agg, mean_bytes);
    let bdp = topo.bdp_packets();

    let mut sim = Sim::new(cfg.clone());

    // Pre-generate all flows and their arrival events.
    for i in 0..cfg.flows {
        let at = arrivals.next_arrival(&mut rng);
        let src = rng.next_below(topo.hosts() as u64) as usize;
        let mut dst = rng.next_below(topo.hosts() as u64) as usize;
        while dst == src {
            dst = rng.next_below(topo.hosts() as u64) as usize;
        }
        let size = cdf.sample_packets(&mut rng) as u32;
        let path = topo.route(src, dst, rng.next_u64());
        let tx = match cfg.system {
            System::Dctcp => Tx::Dctcp(Dctcp::new(10.0)),
            System::PfabricExact | System::PfabricApprox => Tx::Pfabric(PfabricTx::new(size, bdp)),
        };
        sim.flows.push(Flow {
            src,
            dst,
            size,
            path,
            start: at,
            finish: None,
            tx,
            rcv_nxt: 0,
            rcv_seen: match cfg.system {
                System::Dctcp => Vec::new(),
                _ => vec![false; size as usize],
            },
            rcv_count: 0,
            rto_epoch: 0,
            rto_armed: false,
        });
        sim.events.schedule(at, Ev::Arrive(i as u32));
    }

    while let Some((now, ev)) = sim.events.pop() {
        sim.counters.events += 1;
        if sim.cfg.max_events > 0 && sim.counters.events > sim.cfg.max_events {
            break;
        }
        sim.handle(now, ev);
    }

    // Collect FCTs of completed flows.
    let edge_tx = topo.edge.tx_time(MTU_BYTES as u64).expect("non-zero rate");
    let mut records = Vec::new();
    for f in &sim.flows {
        let Some(fin) = f.finish else { continue };
        let ideal =
            (f.size.saturating_sub(1)) as u64 * edge_tx + topo.base_one_way(f.path.len(), 1_500);
        records.push(FctRecord {
            size_bytes: f.size as u64 * MTU_BYTES as u64,
            fct: fin - f.start,
            ideal,
        });
    }
    let summary = Summary::from_records(&records);
    SimResult {
        records,
        summary,
        counters: sim.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(system: System, load: f64, flows: usize) -> SimConfig {
        SimConfig::new(Topology::small(), system, load, flows, 7)
    }

    /// Every flow must complete under every system at moderate load.
    #[test]
    fn all_flows_complete_under_all_systems() {
        for system in [System::Dctcp, System::PfabricExact, System::PfabricApprox] {
            let r = run(base_cfg(system, 0.3, 60));
            assert_eq!(r.counters.completed, 60, "{system:?}: {:?}", r.counters);
            assert_eq!(r.records.len(), 60);
            // FCT can never beat ideal.
            for rec in &r.records {
                assert!(
                    rec.fct >= rec.ideal,
                    "{system:?}: fct {} < ideal {}",
                    rec.fct,
                    rec.ideal
                );
            }
        }
    }

    /// A single flow on an idle fabric finishes near its ideal FCT.
    #[test]
    fn lone_flow_is_near_ideal() {
        for system in [System::Dctcp, System::PfabricExact] {
            let mut cfg = base_cfg(system, 0.05, 1);
            cfg.seed = 3;
            let r = run(cfg);
            assert_eq!(r.counters.completed, 1);
            let rec = &r.records[0];
            let norm = rec.normalized();
            // DCTCP pays slow start on big flows; pFabric starts at line
            // rate. Either way a lone flow should be within ~8x of ideal.
            assert!(norm < 8.0, "{system:?}: normalized FCT {norm}");
        }
    }

    /// pFabric must beat DCTCP on small-flow FCT under load — the paper's
    /// core claim (and the sanity bar for this simulator).
    #[test]
    fn pfabric_beats_dctcp_for_small_flows_under_load() {
        let flows = 300;
        let d = run(base_cfg(System::Dctcp, 0.6, flows));
        let p = run(base_cfg(System::PfabricExact, 0.6, flows));
        let ds = d.summary.avg_small.expect("small flows exist");
        let ps = p.summary.avg_small.expect("small flows exist");
        assert!(
            ps < ds,
            "pFabric small-flow NFCT {ps:.2} must beat DCTCP {ds:.2}"
        );
    }

    /// The approximate queue must track the exact one closely — Figure 19's
    /// "approximation has minimal effect on overall network behavior".
    #[test]
    fn approx_tracks_exact_pfabric() {
        let flows = 300;
        let e = run(base_cfg(System::PfabricExact, 0.6, flows));
        let a = run(base_cfg(System::PfabricApprox, 0.6, flows));
        let (es, as_) = (
            e.summary.avg_small.expect("small flows"),
            a.summary.avg_small.expect("small flows"),
        );
        let rel = (as_ - es).abs() / es;
        assert!(
            rel < 0.35,
            "approx small-flow NFCT {as_:.2} vs exact {es:.2}"
        );
    }

    /// Determinism: same seed, same result.
    #[test]
    fn same_seed_same_result() {
        let a = run(base_cfg(System::PfabricExact, 0.4, 80));
        let b = run(base_cfg(System::PfabricExact, 0.4, 80));
        assert_eq!(a.counters.events, b.counters.events);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.fct, y.fct);
        }
    }
}
