//! The event-driven fabric simulation for Figure 19.
//!
//! Ties together: leaf-spine [`Topology`], per-port [`PortQueue`]s, DCTCP /
//! pFabric [`transport`](crate::transport) state machines, web-search flow
//! sizes under Poisson arrivals, and flow-completion-time recording.
//!
//! The event loop itself runs on Eiffel's own machinery: the default
//! scheduler is [`eiffel_sim::BucketedEventQueue`], the FFS-bucketed timing
//! wheel, with the original [`eiffel_sim::EventQueue`] binary heap kept as
//! a selectable baseline ([`SchedulerBackend`]) — both fire events in
//! identical `(time, insertion-order)` order, so results are bit-identical
//! across backends (asserted in tests and the fig19 runner).
//!
//! Simplifications relative to the authors' ns-2 setup, chosen to preserve
//! the comparison (identical across the three systems; see DESIGN.md):
//! ACKs are delivered after the path's uncontended reverse latency instead
//! of traversing queues (ACK load ≲ 3% and pFabric gives ACKs the highest
//! priority anyway), and ECMP hashes per flow rather than per packet.

use eiffel_sim::{BucketedEventQueue, EventQueue, EventScheduler, Nanos, SplitMix64};
use eiffel_workloads::{FlowSizeDist, PoissonArrivals};

use crate::bits::SeqBits;
use crate::frame::{Frame, MTU_BYTES};
use crate::queues::{PfabricVariant, PortQueue, Verdict};
use crate::stats::{FctRecord, Summary};
use crate::topology::{Path, Topology, MAX_HOPS, PROP_DELAY};
use crate::transport::{Dctcp, PfabricTx};

/// Which system the fabric runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// DCTCP over ECN-marking drop-tail queues.
    Dctcp,
    /// pFabric with exact priority queues.
    PfabricExact,
    /// pFabric with approximate gradient priority queues.
    PfabricApprox,
}

/// Which event scheduler drives the simulation loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerBackend {
    /// The comparison-based `BinaryHeap` baseline (`eiffel_sim::EventQueue`).
    BinaryHeap,
    /// Eiffel's FFS-bucketed timing wheel with an overflow level
    /// (`eiffel_sim::BucketedEventQueue`) — the default.
    FfsWheel,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The fabric.
    pub topo: Topology,
    /// System under test.
    pub system: System,
    /// Offered load as a fraction of aggregate edge capacity (0, 1].
    pub load: f64,
    /// Number of flow arrivals to simulate.
    pub flows: usize,
    /// RNG seed (fixes sizes, endpoints, arrival times).
    pub seed: u64,
    /// DCTCP marking threshold on edge ports, packets (fabric ports 4×).
    pub dctcp_k: usize,
    /// pFabric per-port buffer, packets.
    pub pfabric_buf: usize,
    /// DCTCP min RTO.
    pub dctcp_rto: Nanos,
    /// pFabric RTO (paper: a small multiple of the fabric RTT).
    pub pfabric_rto: Nanos,
    /// Safety valve: stop after this many events (0 = unlimited).
    pub max_events: u64,
}

impl SimConfig {
    /// Defaults mirroring the paper's setup on a given topology.
    pub fn new(topo: Topology, system: System, load: f64, flows: usize, seed: u64) -> Self {
        let rtt = topo.base_rtt();
        SimConfig {
            topo,
            system,
            load,
            flows,
            seed,
            dctcp_k: 65,
            pfabric_buf: (2 * topo.bdp_packets() as usize).max(24),
            dctcp_rto: 5_000_000, // 5 ms (a scaled stand-in for min_RTO)
            pfabric_rto: 3 * rtt.max(10_000),
            max_events: 2_000_000_000,
        }
    }
}

/// Per-flow transport state.
enum Tx {
    Dctcp(Dctcp),
    Pfabric(PfabricTx),
}

struct Flow {
    /// Endpoints, kept for trace inspection and future per-pair stats.
    #[allow(dead_code)]
    src: usize,
    #[allow(dead_code)]
    dst: usize,
    size: u32,
    /// The ECMP route, inline (`Copy`) — no heap allocation per flow.
    path: Path,
    start: Nanos,
    finish: Option<Nanos>,
    tx: Tx,
    /// Receiver state: next expected (DCTCP) or received bitmap (pFabric).
    rcv_nxt: u32,
    rcv_seen: SeqBits,
    rto_epoch: u64,
    rto_armed: bool,
    /// Absolute time the armed retransmission timer should really fire.
    /// Progress ACKs usually push this *forward* without touching the
    /// event queue; a timer that fires early re-arms itself at the updated
    /// deadline (classic timer coalescing — one pending timer per flow).
    /// The rare backward move (progress resets a backed-off timer to a
    /// sooner deadline) falls back to cancel + fresh schedule.
    rto_deadline: Nanos,
    /// Absolute time the currently pending `Ev::Rto` will pop — needed to
    /// detect deadline moves the pending event would fire *after*.
    rto_fires_at: Nanos,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The `i`-th flow arrives.
    Arrive(u32),
    /// Port finished serializing its current frame.
    PortFree(u32),
    /// Frame reaches the input of the port at its own `hop` index.
    EnterPort(Frame),
    /// Frame reaches the destination host.
    Receive(Frame),
    /// ACK reaches the sender.
    Ack {
        flow: u32,
        seq: u32,
        cum: u32,
        ce: bool,
    },
    /// Retransmission timer.
    Rto { flow: u32, epoch: u64 },
}

/// Counters reported alongside FCT statistics.
#[derive(Debug, Clone, Default)]
pub struct SimCounters {
    /// Frames dropped (tail drop or priority eviction).
    pub drops: u64,
    /// Frames delivered to receivers.
    pub delivered: u64,
    /// RTO firings.
    pub timeouts: u64,
    /// Events processed.
    pub events: u64,
    /// Flows that completed.
    pub completed: usize,
}

/// Full result of one run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Per-completed-flow records.
    pub records: Vec<FctRecord>,
    /// The three Figure 19 panels (and extras).
    pub summary: Summary,
    /// Operational counters.
    pub counters: SimCounters,
}

struct Sim<S> {
    cfg: SimConfig,
    events: S,
    flows: Vec<Flow>,
    ports: Vec<PortQueue>,
    port_busy: Vec<Option<Frame>>,
    /// Memoized MTU serialization time per port (the only frame size the
    /// data path emits) — no division on the per-frame path.
    port_tx_mtu: Vec<Nanos>,
    /// Memoized 40 B reverse-path latency per hop count.
    ack_lat: [Nanos; MAX_HOPS + 1],
    counters: SimCounters,
}

impl<S: EventScheduler<Ev>> Sim<S> {
    fn new(cfg: SimConfig, events: S) -> Self {
        let topo = cfg.topo;
        let mut ports = Vec::with_capacity(topo.ports());
        for p in 0..topo.ports() {
            let q = match cfg.system {
                System::Dctcp => {
                    let k = if topo.port_rate(p) == topo.edge {
                        cfg.dctcp_k
                    } else {
                        cfg.dctcp_k * 4
                    };
                    PortQueue::dctcp(k)
                }
                System::PfabricExact => PortQueue::pfabric(PfabricVariant::Exact, cfg.pfabric_buf),
                System::PfabricApprox => {
                    PortQueue::pfabric(PfabricVariant::Approx, cfg.pfabric_buf)
                }
            };
            ports.push(q);
        }
        let n_ports = ports.len();
        let port_tx_mtu = (0..n_ports)
            .map(|p| {
                topo.port_rate(p)
                    .tx_time(MTU_BYTES as u64)
                    .expect("links have non-zero rates")
            })
            .collect();
        let mut ack_lat = [0; MAX_HOPS + 1];
        for (hops, slot) in ack_lat.iter_mut().enumerate() {
            *slot = topo.base_one_way(hops, 40);
        }
        Sim {
            cfg,
            events,
            flows: Vec::new(),
            ports,
            port_busy: (0..n_ports).map(|_| None).collect(),
            port_tx_mtu,
            ack_lat,
            counters: SimCounters::default(),
        }
    }

    /// If `port` is idle and has queued frames, start serializing one.
    fn try_start(&mut self, now: Nanos, port: usize) {
        if self.port_busy[port].is_some() {
            return;
        }
        let Some(frame) = self.ports[port].dequeue() else {
            return;
        };
        let tx = if frame.bytes == MTU_BYTES {
            self.port_tx_mtu[port]
        } else {
            self.cfg
                .topo
                .port_rate(port)
                .tx_time(frame.bytes as u64)
                .expect("links have non-zero rates")
        };
        self.port_busy[port] = Some(frame);
        self.events.schedule(now + tx, Ev::PortFree(port as u32));
    }

    /// Sends whatever the flow's window allows into its NIC port.
    fn pump(&mut self, now: Nanos, fid: u32) {
        let nic = self.flows[fid as usize].path.port(0);
        loop {
            let f = &mut self.flows[fid as usize];
            let frame = match &mut f.tx {
                Tx::Dctcp(t) => {
                    if !t.can_send(f.size) {
                        break;
                    }
                    let seq = t.take_next();
                    Frame::data(fid, seq, 0)
                }
                Tx::Pfabric(t) => {
                    let Some(seq) = t.take_next(f.size) else {
                        break;
                    };
                    let mut fr = Frame::data(fid, seq, 0);
                    fr.rank = t.remaining(f.size);
                    fr
                }
            };
            match self.ports[nic].enqueue(frame) {
                Verdict::Queued => {}
                Verdict::Dropped(_) => self.counters.drops += 1,
            }
            self.try_start(now, nic);
        }
        self.arm_rto(now, fid);
    }

    fn arm_rto(&mut self, now: Nanos, fid: u32) {
        let f = &mut self.flows[fid as usize];
        let outstanding = match &f.tx {
            Tx::Dctcp(t) => t.snd_nxt > t.snd_una && !t.done(f.size),
            Tx::Pfabric(t) => !t.outstanding.is_empty() && !t.done(f.size),
        };
        if !outstanding {
            f.rto_epoch += 1; // cancels any pending timer
            f.rto_armed = false;
            return;
        }
        if f.rto_armed {
            return;
        }
        let (base, backoff) = match &f.tx {
            Tx::Dctcp(t) => (self.cfg.dctcp_rto, t.backoff as u64),
            Tx::Pfabric(t) => (self.cfg.pfabric_rto, t.backoff as u64),
        };
        f.rto_epoch += 1;
        f.rto_armed = true;
        f.rto_deadline = now + base * backoff;
        f.rto_fires_at = f.rto_deadline;
        let epoch = f.rto_epoch;
        self.events
            .schedule(f.rto_deadline, Ev::Rto { flow: fid, epoch });
    }

    fn handle(&mut self, now: Nanos, ev: Ev) {
        match ev {
            Ev::Arrive(fid) => self.pump(now, fid),
            Ev::PortFree(port) => {
                let port = port as usize;
                let mut frame = self.port_busy[port]
                    .take()
                    .expect("PortFree only after start");
                let hop = frame.hop as usize;
                debug_assert_eq!(self.flows[frame.flow as usize].path.port(hop), port);
                if hop + 1 < self.flows[frame.flow as usize].path.hops() {
                    frame.hop += 1;
                    self.events.schedule(now + PROP_DELAY, Ev::EnterPort(frame));
                } else {
                    self.events.schedule(now + PROP_DELAY, Ev::Receive(frame));
                }
                self.try_start(now, port);
            }
            Ev::EnterPort(frame) => {
                let port = self.flows[frame.flow as usize]
                    .path
                    .port(frame.hop as usize);
                match self.ports[port].enqueue(frame) {
                    Verdict::Queued => {}
                    Verdict::Dropped(_) => self.counters.drops += 1,
                }
                self.try_start(now, port);
            }
            Ev::Receive(frame) => {
                self.counters.delivered += 1;
                let fid = frame.flow;
                let f = &mut self.flows[fid as usize];
                let ack_latency = self.ack_lat[f.path.hops()];
                let (cum, seq) = match &f.tx {
                    Tx::Dctcp(_) => {
                        if frame.seq == f.rcv_nxt {
                            f.rcv_nxt += 1;
                        }
                        (f.rcv_nxt, frame.seq)
                    }
                    Tx::Pfabric(_) => {
                        f.rcv_seen.set(frame.seq);
                        (f.rcv_seen.count(), frame.seq)
                    }
                };
                // Receiver-side completion: all data has arrived.
                let complete = match &f.tx {
                    Tx::Dctcp(_) => f.rcv_nxt >= f.size,
                    Tx::Pfabric(_) => f.rcv_seen.count() >= f.size,
                };
                if complete && f.finish.is_none() {
                    f.finish = Some(now);
                    self.counters.completed += 1;
                }
                self.events.schedule(
                    now + ack_latency,
                    Ev::Ack {
                        flow: fid,
                        seq,
                        cum,
                        ce: frame.ce,
                    },
                );
            }
            Ev::Ack { flow, seq, cum, ce } => {
                let f = &mut self.flows[flow as usize];
                let progressed = match &mut f.tx {
                    Tx::Dctcp(t) => t.on_ack(cum, ce),
                    Tx::Pfabric(t) => t.on_ack(seq),
                };
                if progressed && f.rto_armed {
                    // Fresh progress restarts the timer from now
                    // (transport backoff was just reset to 1). Usually the
                    // new deadline is at or after the pending event, which
                    // re-arms itself when it fires early; but progress on
                    // a backed-off timer can move the deadline *earlier*
                    // than the pending pop — then coalescing would fire
                    // late, so cancel and schedule afresh.
                    let base = match &f.tx {
                        Tx::Dctcp(_) => self.cfg.dctcp_rto,
                        Tx::Pfabric(_) => self.cfg.pfabric_rto,
                    };
                    f.rto_deadline = now + base;
                    if f.rto_deadline < f.rto_fires_at {
                        f.rto_epoch += 1; // orphans the pending event
                        f.rto_fires_at = f.rto_deadline;
                        let epoch = f.rto_epoch;
                        self.events
                            .schedule(f.rto_deadline, Ev::Rto { flow, epoch });
                    }
                }
                self.pump(now, flow);
            }
            Ev::Rto { flow, epoch } => {
                let f = &mut self.flows[flow as usize];
                if epoch != f.rto_epoch {
                    return; // cancelled or superseded
                }
                if now < f.rto_deadline {
                    // Progress pushed the deadline forward since this event
                    // was scheduled: re-arm at the real deadline.
                    let at = f.rto_deadline;
                    f.rto_fires_at = at;
                    self.events.schedule(at, Ev::Rto { flow, epoch });
                    return;
                }
                f.rto_armed = false;
                self.counters.timeouts += 1;
                match &mut f.tx {
                    Tx::Dctcp(t) => t.on_timeout(),
                    Tx::Pfabric(t) => t.on_timeout(),
                }
                self.pump(now, flow);
            }
        }
    }
}

/// Runs the configured simulation to completion on the default
/// FFS-bucketed wheel scheduler.
pub fn run(cfg: SimConfig) -> SimResult {
    run_with(cfg, SchedulerBackend::FfsWheel)
}

/// Runs the configured simulation on an explicit scheduler backend.
///
/// Both backends pop events in identical `(time, insertion-order)` order,
/// so the result — records, summary, counters — is the same; only wall
/// time differs. The fig19 runner uses this for its before/after
/// events-per-second comparison.
pub fn run_with(cfg: SimConfig, backend: SchedulerBackend) -> SimResult {
    match backend {
        SchedulerBackend::BinaryHeap => run_on::<EventQueue<Ev>>(cfg),
        SchedulerBackend::FfsWheel => run_on::<BucketedEventQueue<Ev>>(cfg),
    }
}

fn run_on<S: EventScheduler<Ev> + Default>(cfg: SimConfig) -> SimResult {
    let topo = cfg.topo;
    let mut rng = SplitMix64::new(cfg.seed);
    let cdf = FlowSizeDist::WebSearch.cdf();
    let mean_bytes = FlowSizeDist::WebSearch.mean_bytes();
    let agg = eiffel_sim::Rate::bps(topo.edge.as_bps() * topo.hosts() as u64);
    let mut arrivals = PoissonArrivals::for_load(cfg.load, agg, mean_bytes);
    let bdp = topo.bdp_packets();

    let mut sim = Sim::new(cfg.clone(), S::default());

    // Pre-generate all flows and their arrival events.
    for i in 0..cfg.flows {
        let at = arrivals.next_arrival(&mut rng);
        let src = rng.next_below(topo.hosts() as u64) as usize;
        let mut dst = rng.next_below(topo.hosts() as u64) as usize;
        while dst == src {
            dst = rng.next_below(topo.hosts() as u64) as usize;
        }
        let size = cdf.sample_packets(&mut rng) as u32;
        let path = topo.route(src, dst, rng.next_u64());
        let tx = match cfg.system {
            System::Dctcp => Tx::Dctcp(Dctcp::new(10.0)),
            System::PfabricExact | System::PfabricApprox => Tx::Pfabric(PfabricTx::new(size, bdp)),
        };
        sim.flows.push(Flow {
            src,
            dst,
            size,
            path,
            start: at,
            finish: None,
            tx,
            rcv_nxt: 0,
            rcv_seen: SeqBits::new(),
            rto_epoch: 0,
            rto_armed: false,
            rto_deadline: 0,
            rto_fires_at: 0,
        });
        sim.events.schedule(at, Ev::Arrive(i as u32));
    }

    while let Some((now, ev)) = sim.events.pop() {
        sim.counters.events += 1;
        if sim.cfg.max_events > 0 && sim.counters.events > sim.cfg.max_events {
            break;
        }
        sim.handle(now, ev);
    }

    // Collect FCTs of completed flows.
    let edge_tx = topo.edge.tx_time(MTU_BYTES as u64).expect("non-zero rate");
    let mut records = Vec::new();
    for f in &sim.flows {
        let Some(fin) = f.finish else { continue };
        let ideal =
            (f.size.saturating_sub(1)) as u64 * edge_tx + topo.base_one_way(f.path.hops(), 1_500);
        records.push(FctRecord {
            size_bytes: f.size as u64 * MTU_BYTES as u64,
            fct: fin - f.start,
            ideal,
        });
    }
    let summary = Summary::from_records(&records);
    SimResult {
        records,
        summary,
        counters: sim.counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(system: System, load: f64, flows: usize) -> SimConfig {
        SimConfig::new(Topology::small(), system, load, flows, 7)
    }

    /// Every flow must complete under every system at moderate load.
    #[test]
    fn all_flows_complete_under_all_systems() {
        for system in [System::Dctcp, System::PfabricExact, System::PfabricApprox] {
            let r = run(base_cfg(system, 0.3, 60));
            assert_eq!(r.counters.completed, 60, "{system:?}: {:?}", r.counters);
            assert_eq!(r.records.len(), 60);
            // FCT can never beat ideal.
            for rec in &r.records {
                assert!(
                    rec.fct >= rec.ideal,
                    "{system:?}: fct {} < ideal {}",
                    rec.fct,
                    rec.ideal
                );
            }
        }
    }

    /// A single flow on an idle fabric finishes near its ideal FCT.
    #[test]
    fn lone_flow_is_near_ideal() {
        for system in [System::Dctcp, System::PfabricExact] {
            let mut cfg = base_cfg(system, 0.05, 1);
            cfg.seed = 3;
            let r = run(cfg);
            assert_eq!(r.counters.completed, 1);
            let rec = &r.records[0];
            let norm = rec.normalized();
            // DCTCP pays slow start on big flows; pFabric starts at line
            // rate. Either way a lone flow should be within ~8x of ideal.
            assert!(norm < 8.0, "{system:?}: normalized FCT {norm}");
        }
    }

    /// pFabric must beat DCTCP on small-flow FCT under load — the paper's
    /// core claim (and the sanity bar for this simulator).
    #[test]
    fn pfabric_beats_dctcp_for_small_flows_under_load() {
        let flows = 300;
        let d = run(base_cfg(System::Dctcp, 0.6, flows));
        let p = run(base_cfg(System::PfabricExact, 0.6, flows));
        let ds = d.summary.avg_small.expect("small flows exist");
        let ps = p.summary.avg_small.expect("small flows exist");
        assert!(
            ps < ds,
            "pFabric small-flow NFCT {ps:.2} must beat DCTCP {ds:.2}"
        );
    }

    /// The approximate queue must track the exact one closely — Figure 19's
    /// "approximation has minimal effect on overall network behavior".
    #[test]
    fn approx_tracks_exact_pfabric() {
        let flows = 300;
        let e = run(base_cfg(System::PfabricExact, 0.6, flows));
        let a = run(base_cfg(System::PfabricApprox, 0.6, flows));
        let (es, as_) = (
            e.summary.avg_small.expect("small flows"),
            a.summary.avg_small.expect("small flows"),
        );
        let rel = (as_ - es).abs() / es;
        assert!(
            rel < 0.35,
            "approx small-flow NFCT {as_:.2} vs exact {es:.2}"
        );
    }

    /// Determinism: same seed, same result.
    #[test]
    fn same_seed_same_result() {
        let a = run(base_cfg(System::PfabricExact, 0.4, 80));
        let b = run(base_cfg(System::PfabricExact, 0.4, 80));
        assert_eq!(a.counters.events, b.counters.events);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.fct, y.fct);
        }
    }

    /// Heavy-loss regime: tiny pFabric buffers force drops, timeouts and
    /// RTO backoff, exercising the timer-coalescing paths (including
    /// progress moving a backed-off deadline *earlier* than the pending
    /// event). Every flow must still complete, and both backends must
    /// still agree bit for bit.
    #[test]
    fn completes_under_heavy_loss_and_backoff() {
        let mut cfg = base_cfg(System::PfabricExact, 0.8, 120);
        cfg.pfabric_buf = 4;
        let w = run_with(cfg.clone(), SchedulerBackend::FfsWheel);
        assert!(w.counters.timeouts > 0, "loss regime must trigger RTOs");
        assert!(w.counters.drops > 0);
        assert_eq!(w.counters.completed, 120, "{:?}", w.counters);
        let h = run_with(cfg, SchedulerBackend::BinaryHeap);
        assert_eq!(w.counters.events, h.counters.events);
        for (x, y) in w.records.iter().zip(&h.records) {
            assert_eq!(x.fct, y.fct);
        }
    }

    /// The two scheduler backends must produce bit-identical simulations:
    /// same event count, same timeouts, same per-flow FCTs.
    #[test]
    fn backends_are_bit_identical() {
        for system in [System::Dctcp, System::PfabricExact, System::PfabricApprox] {
            let cfg = base_cfg(system, 0.6, 120);
            let w = run_with(cfg.clone(), SchedulerBackend::FfsWheel);
            let h = run_with(cfg, SchedulerBackend::BinaryHeap);
            assert_eq!(w.counters.events, h.counters.events, "{system:?}");
            assert_eq!(w.counters.timeouts, h.counters.timeouts, "{system:?}");
            assert_eq!(w.counters.drops, h.counters.drops, "{system:?}");
            assert_eq!(w.records.len(), h.records.len(), "{system:?}");
            for (x, y) in w.records.iter().zip(&h.records) {
                assert_eq!(x.fct, y.fct, "{system:?}");
            }
        }
    }
}
