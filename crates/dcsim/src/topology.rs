//! Leaf-spine fabric: topology, link parameters, routing.
//!
//! The paper's Figure 19 simulates "a 144 node leaf-spine topology" (the
//! pFabric setup: 9 leaves × 16 hosts, 4 spines, 10 Gbps edge and 40 Gbps
//! fabric links). The topology is parameterized so tests run a scaled-down
//! fabric with identical structure.

use eiffel_sim::{Nanos, Rate};

/// Per-hop propagation delay (the pFabric simulations use 0.2 µs/hop).
pub const PROP_DELAY: Nanos = 200;

/// Longest route through the leaf-spine fabric, in ports traversed
/// (host uplink → leaf uplink → spine downlink → leaf downlink).
pub const MAX_HOPS: usize = 4;

/// An ECMP route: the ports a frame traverses, inline and `Copy` so the
/// per-flow table holds it without a heap allocation (port ids fit `u16`
/// comfortably: the paper fabric has 360).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Path {
    ports: [u16; MAX_HOPS],
    len: u8,
}

impl Path {
    fn new(ports: &[usize]) -> Self {
        debug_assert!(ports.len() <= MAX_HOPS);
        let mut p = Path {
            ports: [0; MAX_HOPS],
            len: ports.len() as u8,
        };
        for (slot, &port) in p.ports.iter_mut().zip(ports) {
            *slot = u16::try_from(port).expect("port ids fit u16");
        }
        p
    }

    /// Number of ports traversed.
    pub fn hops(&self) -> usize {
        self.len as usize
    }

    /// Port traversed at hop `i` (0-based).
    pub fn port(&self, i: usize) -> usize {
        debug_assert!(i < self.hops());
        self.ports[i] as usize
    }

    /// The traversed ports in order.
    pub fn as_slice(&self) -> &[u16] {
        &self.ports[..self.len as usize]
    }
}

/// Fabric parameters.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    /// Leaf switches.
    pub leaves: usize,
    /// Hosts per leaf.
    pub hosts_per_leaf: usize,
    /// Spine switches.
    pub spines: usize,
    /// Edge (host↔leaf) link rate.
    pub edge: Rate,
    /// Fabric (leaf↔spine) link rate.
    pub fabric: Rate,
}

impl Topology {
    /// The paper's 144-host fabric.
    pub fn paper() -> Self {
        Topology {
            leaves: 9,
            hosts_per_leaf: 16,
            spines: 4,
            edge: Rate::gbps(10),
            fabric: Rate::gbps(40),
        }
    }

    /// A scaled-down fabric with the same structure (for tests).
    pub fn small() -> Self {
        Topology {
            leaves: 4,
            hosts_per_leaf: 8,
            spines: 2,
            edge: Rate::gbps(10),
            fabric: Rate::gbps(40),
        }
    }

    /// Total hosts.
    pub fn hosts(&self) -> usize {
        self.leaves * self.hosts_per_leaf
    }

    /// Leaf switch of a host.
    pub fn leaf_of(&self, host: usize) -> usize {
        host / self.hosts_per_leaf
    }

    /// Number of directed, queued ports:
    /// host uplinks + leaf downlinks + leaf uplinks + spine downlinks.
    pub fn ports(&self) -> usize {
        self.hosts() + self.hosts() + self.leaves * self.spines + self.spines * self.leaves
    }

    /// Port id: host `h`'s NIC egress (host → leaf).
    pub fn host_uplink(&self, h: usize) -> usize {
        h
    }

    /// Port id: leaf-to-host downlink.
    pub fn leaf_down(&self, h: usize) -> usize {
        self.hosts() + h
    }

    /// Port id: leaf `l` → spine `s` uplink.
    pub fn leaf_up(&self, l: usize, s: usize) -> usize {
        2 * self.hosts() + l * self.spines + s
    }

    /// Port id: spine `s` → leaf `l` downlink.
    pub fn spine_down(&self, s: usize, l: usize) -> usize {
        2 * self.hosts() + self.leaves * self.spines + s * self.leaves + l
    }

    /// Rate of a port's outgoing link.
    pub fn port_rate(&self, port: usize) -> Rate {
        if port < 2 * self.hosts() {
            self.edge
        } else {
            self.fabric
        }
    }

    /// The ECMP path (ports traversed) from `src` to `dst` for a flow
    /// hashed to `hash` (per-flow ECMP spine selection).
    pub fn route(&self, src: usize, dst: usize, hash: u64) -> Path {
        assert_ne!(src, dst, "flows need distinct endpoints");
        let (ls, ld) = (self.leaf_of(src), self.leaf_of(dst));
        if ls == ld {
            Path::new(&[self.host_uplink(src), self.leaf_down(dst)])
        } else {
            let s = (hash % self.spines as u64) as usize;
            Path::new(&[
                self.host_uplink(src),
                self.leaf_up(ls, s),
                self.spine_down(s, ld),
                self.leaf_down(dst),
            ])
        }
    }

    /// One-way latency of an empty path (serialization at each hop plus
    /// propagation), for MTU frames — the base for ideal FCTs.
    pub fn base_one_way(&self, hops: usize, bytes: u64) -> Nanos {
        // hops = number of ports traversed.
        let edge_tx = self.edge.tx_time(bytes).expect("non-zero rate");
        let fabric_tx = self.fabric.tx_time(bytes).expect("non-zero rate");
        let mut t = 0;
        for i in 0..hops {
            // First and last hops are edge links in any route.
            let is_edge = i == 0 || i == hops - 1;
            t += if is_edge { edge_tx } else { fabric_tx } + PROP_DELAY;
        }
        t
    }

    /// Base round-trip time across the fabric (4-hop path, MTU out, 40B
    /// ack back along the same hops).
    pub fn base_rtt(&self) -> Nanos {
        self.base_one_way(4, 1_500) + self.base_one_way(4, 40)
    }

    /// Bandwidth-delay product of an edge link in MTU packets (pFabric's
    /// window size).
    pub fn bdp_packets(&self) -> u32 {
        let bytes = self.edge.as_bps() as u128 * self.base_rtt() as u128 / 8 / 1_000_000_000;
        (bytes as u32).div_ceil(1_500).max(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_has_144_hosts() {
        let t = Topology::paper();
        assert_eq!(t.hosts(), 144);
        assert_eq!(t.ports(), 144 + 144 + 36 + 36);
    }

    #[test]
    fn port_ids_are_disjoint_and_dense() {
        let t = Topology::small();
        let mut seen = vec![false; t.ports()];
        for h in 0..t.hosts() {
            for p in [t.host_uplink(h), t.leaf_down(h)] {
                assert!(!seen[p], "duplicate port {p}");
                seen[p] = true;
            }
        }
        for l in 0..t.leaves {
            for s in 0..t.spines {
                for p in [t.leaf_up(l, s), t.spine_down(s, l)] {
                    assert!(!seen[p], "duplicate port {p}");
                    seen[p] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b), "port space must be dense");
    }

    #[test]
    fn routes_are_well_formed() {
        let t = Topology::small();
        // Same leaf: two hops.
        let r = t.route(0, 1, 42);
        assert_eq!(r.hops(), 2);
        assert_eq!(
            r.as_slice(),
            &[t.host_uplink(0) as u16, t.leaf_down(1) as u16]
        );
        // Cross leaf: four hops through the hashed spine.
        let r = t.route(0, t.hosts_per_leaf, 1);
        assert_eq!(r.hops(), 4);
        assert_eq!(r.port(0), t.host_uplink(0));
        assert_eq!(r.port(3), t.leaf_down(t.hosts_per_leaf));
        // Hash steers the spine.
        let r0 = t.route(0, t.hosts_per_leaf, 0);
        let r1 = t.route(0, t.hosts_per_leaf, 1);
        assert_ne!(r0.port(1), r1.port(1), "different hashes, different spines");
    }

    #[test]
    fn edge_ports_are_edge_rate() {
        let t = Topology::paper();
        assert_eq!(t.port_rate(t.host_uplink(5)), Rate::gbps(10));
        assert_eq!(t.port_rate(t.leaf_down(5)), Rate::gbps(10));
        assert_eq!(t.port_rate(t.leaf_up(0, 0)), Rate::gbps(40));
        assert_eq!(t.port_rate(t.spine_down(0, 0)), Rate::gbps(40));
    }

    #[test]
    fn bdp_is_a_handful_of_packets() {
        let t = Topology::paper();
        let bdp = t.bdp_packets();
        assert!(
            (4..40).contains(&bdp),
            "10G × ~10µs ≈ a dozen MTUs, got {bdp}"
        );
    }
}
