//! Lazily-grown sequence bitmap for receiver / SACK state.
//!
//! The simulator pre-creates every flow of a run, so per-flow state must be
//! cheap until the flow actually carries traffic. `SeqBits` replaces the
//! old `Vec<bool>` (one byte per packet, allocated for the full flow size
//! at flow creation) with a word bitmap that starts empty and grows only
//! when a sequence is first marked — 8× denser, and flows that never start
//! (or short prefixes of long flows) allocate next to nothing.

/// A growable set of `u32` sequence numbers backed by 64-bit words.
#[derive(Debug, Clone, Default)]
pub struct SeqBits {
    words: Vec<u64>,
    ones: u32,
}

impl SeqBits {
    /// An empty set; no allocation until the first [`SeqBits::set`].
    pub fn new() -> Self {
        SeqBits::default()
    }

    /// Number of distinct sequences marked.
    pub fn count(&self) -> u32 {
        self.ones
    }

    /// Whether `seq` is marked.
    pub fn test(&self, seq: u32) -> bool {
        let w = (seq / 64) as usize;
        self.words
            .get(w)
            .is_some_and(|&x| x & (1 << (seq % 64)) != 0)
    }

    /// Marks `seq`; returns `true` if it was newly set.
    pub fn set(&mut self, seq: u32) -> bool {
        let w = (seq / 64) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let bit = 1u64 << (seq % 64);
        if self.words[w] & bit != 0 {
            return false;
        }
        self.words[w] |= bit;
        self.ones += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_idempotent_and_counts() {
        let mut b = SeqBits::new();
        assert!(!b.test(100));
        assert!(b.set(100));
        assert!(!b.set(100), "second set reports not-new");
        assert!(b.set(0));
        assert!(b.set(6_000));
        assert_eq!(b.count(), 3);
        assert!(b.test(0) && b.test(100) && b.test(6_000));
        assert!(!b.test(99) && !b.test(101));
    }

    #[test]
    fn empty_set_allocates_nothing() {
        let b = SeqBits::new();
        assert_eq!(b.words.capacity(), 0);
        assert!(!b.test(u32::MAX));
    }
}
