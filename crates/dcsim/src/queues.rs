//! Switch output-port queues: DCTCP drop-tail+ECN and pFabric priority
//! queues (exact and approximate).
//!
//! The Figure 19 experiment "changes only the priority queuing
//! implementation from a linear search-based priority queue to our
//! Approximate priority queue": the pFabric port is generic over its
//! min-finder. Priority-*drop* eviction (overflow removes the
//! lowest-priority packet) uses an exact max lookup in both variants so
//! the approximation under study stays isolated to min-extraction.

use std::collections::VecDeque;

use eiffel_core::{ApproxGradientQueue, HierFfsQueue, RankedQueue};

use crate::frame::Frame;

/// Rank ceiling for pFabric ports: remaining sizes are clamped here (all
/// "very large" remainders are equally last — the web-search tail spans to
/// 20k packets but contention is decided among the small ranks).
pub const RANK_CAP: u32 = 4_095;

/// What happened on enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Packet admitted.
    Queued,
    /// A packet was dropped: the arriving one or an evicted lower-priority
    /// one (pFabric's priority drop).
    Dropped(Frame),
}

/// Exactness of the pFabric port's min-extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PfabricVariant {
    /// Exact FFS-based priority queue.
    Exact,
    /// Approximate gradient queue (the Fig 19 "pFabric-Approx").
    Approx,
}

/// The ranked queue behind a pFabric port.
pub enum PfabricPq {
    /// Exact hierarchical FFS queue.
    Exact(HierFfsQueue<Frame>),
    /// Approximate gradient queue.
    Approx(ApproxGradientQueue<Frame>),
}

impl PfabricPq {
    fn new(variant: PfabricVariant) -> Self {
        match variant {
            PfabricVariant::Exact => PfabricPq::Exact(HierFfsQueue::new(RANK_CAP as usize + 1, 1)),
            PfabricVariant::Approx => PfabricPq::Approx(ApproxGradientQueue::with_base(
                RANK_CAP as usize + 1,
                1,
                0,
                // α sized for the bucket count (48·α ≥ 4096).
                128,
            )),
        }
    }

    fn enqueue(&mut self, rank: u64, f: Frame) {
        match self {
            PfabricPq::Exact(q) => q
                .enqueue(rank, f)
                .unwrap_or_else(|_| unreachable!("clamped")),
            PfabricPq::Approx(q) => q
                .enqueue(rank, f)
                .unwrap_or_else(|_| unreachable!("clamped")),
        }
    }

    fn dequeue_min(&mut self) -> Option<(u64, Frame)> {
        match self {
            PfabricPq::Exact(q) => q.dequeue_min(),
            PfabricPq::Approx(q) => q.dequeue_min(),
        }
    }

    fn dequeue_max(&mut self) -> Option<(u64, Frame)> {
        match self {
            PfabricPq::Exact(q) => q.dequeue_max(),
            PfabricPq::Approx(q) => q.dequeue_max(),
        }
    }

    fn peek_max_rank(&self) -> Option<u64> {
        match self {
            PfabricPq::Exact(q) => q.peek_max_rank(),
            // Exact max-peek via the cached-bound scan: the admission test
            // no longer pays a full counter scan (plus an eviction and
            // re-enqueue round trip) on every arrival at a full port.
            PfabricPq::Approx(q) => q.peek_max_rank(),
        }
    }

    fn len(&self) -> usize {
        match self {
            PfabricPq::Exact(q) => q.len(),
            PfabricPq::Approx(q) => q.len(),
        }
    }
}

/// An output-port queue.
pub enum PortQueue {
    /// FIFO with tail drop and ECN marking above `ecn_k` (DCTCP).
    DropTailEcn {
        /// The FIFO.
        fifo: VecDeque<Frame>,
        /// Capacity in packets.
        cap: usize,
        /// Marking threshold in packets (DCTCP's K).
        ecn_k: usize,
    },
    /// pFabric: priority scheduling + priority dropping.
    Pfabric {
        /// The ranked queue, boxed so the per-port array stride stays one
        /// cache line for every variant.
        pq: Box<PfabricPq>,
        /// Capacity in packets.
        cap: usize,
    },
}

impl PortQueue {
    /// DCTCP port with standard thresholds (cap ≈ 4×K).
    pub fn dctcp(ecn_k: usize) -> Self {
        PortQueue::DropTailEcn {
            fifo: VecDeque::new(),
            cap: ecn_k * 4,
            ecn_k,
        }
    }

    /// pFabric port with `cap` packets of buffer.
    pub fn pfabric(variant: PfabricVariant, cap: usize) -> Self {
        PortQueue::Pfabric {
            pq: Box::new(PfabricPq::new(variant)),
            cap,
        }
    }

    /// Queued packets.
    pub fn len(&self) -> usize {
        match self {
            PortQueue::DropTailEcn { fifo, .. } => fifo.len(),
            PortQueue::Pfabric { pq, .. } => pq.len(),
        }
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `frame`, applying the port's drop/mark policy.
    pub fn enqueue(&mut self, mut frame: Frame) -> Verdict {
        match self {
            PortQueue::DropTailEcn { fifo, cap, ecn_k } => {
                if fifo.len() >= *cap {
                    return Verdict::Dropped(frame);
                }
                if fifo.len() >= *ecn_k {
                    frame.ce = true; // DCTCP marking at enqueue
                }
                fifo.push_back(frame);
                Verdict::Queued
            }
            PortQueue::Pfabric { pq, cap } => {
                let rank = frame.rank.min(RANK_CAP) as u64;
                if pq.len() >= *cap {
                    // Priority drop: evict the worst, unless the arrival is
                    // at least as bad as the current worst. Both variants
                    // answer the admission test exactly (FFS bitmap /
                    // occupancy bitmap), so past this guard the arrival
                    // strictly beats the evictee (granularity 1: the max
                    // bucket's stored ranks all equal `max`).
                    let max = pq.peek_max_rank().expect("full queue has a max");
                    if rank >= max {
                        return Verdict::Dropped(frame);
                    }
                    let evicted = pq.dequeue_max().expect("full queue has a max");
                    debug_assert!(evicted.0 > rank, "admission test said strictly better");
                    pq.enqueue(rank, frame);
                    return Verdict::Dropped(evicted.1);
                }
                pq.enqueue(rank, frame);
                Verdict::Queued
            }
        }
    }

    /// Removes the next packet to transmit (FIFO or highest priority).
    pub fn dequeue(&mut self) -> Option<Frame> {
        match self {
            PortQueue::DropTailEcn { fifo, .. } => fifo.pop_front(),
            PortQueue::Pfabric { pq, .. } => pq.dequeue_min().map(|(_, f)| f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dctcp_marks_above_k_and_drops_at_cap() {
        let mut q = PortQueue::dctcp(2); // K=2, cap=8
        for seq in 0..8 {
            assert_eq!(q.enqueue(Frame::data(0, seq, 10)), Verdict::Queued);
        }
        match q.enqueue(Frame::data(0, 8, 10)) {
            Verdict::Dropped(f) => assert_eq!(f.seq, 8),
            v => panic!("expected tail drop, got {v:?}"),
        }
        // First two unmarked, the rest CE-marked.
        let marks: Vec<bool> = std::iter::from_fn(|| q.dequeue()).map(|f| f.ce).collect();
        assert_eq!(
            marks,
            vec![false, false, true, true, true, true, true, true]
        );
    }

    #[test]
    fn pfabric_serves_smallest_remaining_first() {
        for variant in [PfabricVariant::Exact, PfabricVariant::Approx] {
            let mut q = PortQueue::pfabric(variant, 16);
            q.enqueue(Frame::data(0, 0, 1_000));
            q.enqueue(Frame::data(1, 0, 3));
            q.enqueue(Frame::data(2, 0, 50));
            let order: Vec<u32> = std::iter::from_fn(|| q.dequeue()).map(|f| f.flow).collect();
            assert_eq!(order, vec![1, 2, 0], "{variant:?}");
        }
    }

    #[test]
    fn pfabric_priority_drop_evicts_worst() {
        for variant in [PfabricVariant::Exact, PfabricVariant::Approx] {
            let mut q = PortQueue::pfabric(variant, 3);
            q.enqueue(Frame::data(0, 0, 100));
            q.enqueue(Frame::data(1, 0, 200));
            q.enqueue(Frame::data(2, 0, 300));
            // Arrival with rank 10: the rank-300 packet must give way.
            match q.enqueue(Frame::data(3, 0, 10)) {
                Verdict::Dropped(f) => assert_eq!(f.flow, 2, "{variant:?}"),
                v => panic!("expected eviction, got {v:?}"),
            }
            // Arrival worse than everything: dropped itself.
            match q.enqueue(Frame::data(4, 0, 4_000)) {
                Verdict::Dropped(f) => assert_eq!(f.flow, 4, "{variant:?}"),
                v => panic!("expected arrival drop, got {v:?}"),
            }
            assert_eq!(q.len(), 3);
        }
    }

    #[test]
    fn rank_cap_clamps_giant_remainders() {
        let mut q = PortQueue::pfabric(PfabricVariant::Exact, 4);
        q.enqueue(Frame::data(0, 0, 1_000_000)); // → RANK_CAP bucket
        q.enqueue(Frame::data(1, 0, 5));
        assert_eq!(q.dequeue().unwrap().flow, 1);
        assert_eq!(q.dequeue().unwrap().flow, 0);
    }
}
