//! # eiffel-dcsim — packet-level datacenter simulation (paper §5.2, Fig 19)
//!
//! "A natural question is: how does approximate prioritization, at every
//! switch in a network, affect network-wide objectives?" The paper answers
//! with ns-2 simulations of pFabric on a 144-host leaf-spine fabric under
//! the web-search workload, comparing DCTCP, pFabric with exact priority
//! queues, and pFabric with Eiffel's approximate gradient queue.
//!
//! This crate is that simulator: leaf-spine [`Topology`], output-queued
//! switches with pluggable [`queues::PortQueue`]s (drop-tail+ECN or
//! pFabric priority scheduling *and* priority dropping), DCTCP and minimal
//! pFabric [`transport`]s, Poisson arrivals from the web-search flow-size
//! CDF, and normalized-FCT [`stats`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod frame;
pub mod queues;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod transport;

pub use bits::SeqBits;
pub use frame::Frame;
pub use queues::{PfabricVariant, PortQueue, Verdict};
pub use sim::{run, run_with, SchedulerBackend, SimConfig, SimCounters, SimResult, System};
pub use stats::{FctRecord, Summary};
pub use topology::{Path, Topology};
