//! The datacenter simulator's wire frame.
//!
//! Richer than the scheduler-facing `eiffel_sim::Packet`: it carries a
//! sequence number, the pFabric priority (remaining flow size at emission)
//! and the ECN Congestion Experienced bit DCTCP marks in switches.

/// One data packet in flight.
///
/// Small and `Copy`: frames travel through ports and the event queue by
/// value, with no heap state attached. The route itself lives in the
/// per-flow table ([`Path`](crate::Path)); the frame carries only its
/// current hop index, so no per-hop path scan (or allocation) is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Flow index.
    pub flow: u32,
    /// Sequence number in packets (0-based).
    pub seq: u32,
    /// Wire size in bytes.
    pub bytes: u32,
    /// pFabric priority: the flow's remaining size (packets) when this
    /// frame was (re)transmitted. Lower = more urgent.
    pub rank: u32,
    /// Index into the flow's [`Path`](crate::Path) of the port currently
    /// holding (or serializing) this frame.
    pub hop: u8,
    /// ECN Congestion Experienced — set by DCTCP switches above threshold.
    pub ce: bool,
}

/// MTU wire size used by the simulations (1460B payload + headers).
pub const MTU_BYTES: u32 = 1_500;

impl Frame {
    /// A full-sized data frame entering the network at hop 0.
    pub fn data(flow: u32, seq: u32, rank: u32) -> Self {
        Frame {
            flow,
            seq,
            bytes: MTU_BYTES,
            rank,
            hop: 0,
            ce: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_frames_default_unmarked() {
        let f = Frame::data(3, 7, 100);
        assert!(!f.ce);
        assert_eq!((f.flow, f.seq, f.rank, f.bytes), (3, 7, 100, MTU_BYTES));
    }
}
