//! End-host transports: DCTCP and pFabric's minimal transport.
//!
//! These are the sender-side state machines of the Figure 19 comparison.
//! DCTCP (Alizadeh et al., SIGCOMM'10) is the baseline: ECN-fraction-scaled
//! congestion windows over go-back-N recovery. pFabric's transport
//! (SIGCOMM'13) is deliberately minimal: a fixed BDP window at line rate,
//! selective retransmission on timeout — the fabric's priority scheduling
//! and priority dropping do the scheduling work.

use std::collections::BTreeSet;

use crate::bits::SeqBits;

/// DCTCP's EWMA gain for the marked fraction (the paper's g = 1/16).
pub const DCTCP_G: f64 = 1.0 / 16.0;

/// DCTCP sender state (go-back-N, per-packet cumulative ACKs).
#[derive(Debug, Clone)]
pub struct Dctcp {
    /// Congestion window in packets (fractional growth in CA).
    pub cwnd: f64,
    /// Slow-start threshold.
    pub ssthresh: f64,
    /// Next new sequence to send.
    pub snd_nxt: u32,
    /// Highest cumulative ACK received.
    pub snd_una: u32,
    /// EWMA of the marked fraction.
    pub alpha: f64,
    /// Window-accounting boundary: when `snd_una` passes it, apply α.
    win_end: u32,
    acks_in_win: u32,
    marks_in_win: u32,
    /// Exponential RTO backoff (power of two multiplier).
    pub backoff: u32,
}

impl Dctcp {
    /// A fresh sender with initial window `iw`.
    pub fn new(iw: f64) -> Self {
        Dctcp {
            cwnd: iw,
            ssthresh: f64::MAX,
            snd_nxt: 0,
            snd_una: 0,
            alpha: 0.0,
            win_end: 0,
            acks_in_win: 0,
            marks_in_win: 0,
            backoff: 1,
        }
    }

    /// Whether another packet may enter the network.
    pub fn can_send(&self, size: u32) -> bool {
        self.snd_nxt < size && (self.snd_nxt - self.snd_una) < self.cwnd as u32
    }

    /// Takes the next sequence to transmit.
    pub fn take_next(&mut self) -> u32 {
        let s = self.snd_nxt;
        self.snd_nxt += 1;
        s
    }

    /// Processes a cumulative ACK; `ce` is the echoed congestion signal.
    /// Returns `true` if the ACK advanced the window (progress made).
    pub fn on_ack(&mut self, cum: u32, ce: bool) -> bool {
        if cum <= self.snd_una {
            return false; // duplicate (GBN ignores them)
        }
        let advanced = cum - self.snd_una;
        self.snd_una = cum;
        self.backoff = 1;
        self.acks_in_win += advanced;
        if ce {
            self.marks_in_win += advanced;
        } else {
            // Window growth on unmarked ACKs only.
            for _ in 0..advanced {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
        }
        // Once per RTT (window of data acked): fold in the mark fraction.
        if self.snd_una >= self.win_end {
            let f = if self.acks_in_win == 0 {
                0.0
            } else {
                self.marks_in_win as f64 / self.acks_in_win as f64
            };
            self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G * f;
            if self.marks_in_win > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(1.0);
                self.ssthresh = self.cwnd;
            }
            self.acks_in_win = 0;
            self.marks_in_win = 0;
            self.win_end = self.snd_una + self.cwnd as u32;
        }
        true
    }

    /// Retransmission timeout: go-back-N from `snd_una` at window 1.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.snd_nxt = self.snd_una;
        self.alpha = (1.0 - DCTCP_G) * self.alpha + DCTCP_G; // full mark
        self.backoff = (self.backoff * 2).min(16);
    }

    /// Whether every byte is cumulatively acknowledged.
    pub fn done(&self, size: u32) -> bool {
        self.snd_una >= size
    }
}

/// pFabric's minimal sender: fixed window, selective repeat on timeout.
#[derive(Debug, Clone)]
pub struct PfabricTx {
    /// Fixed window (BDP packets).
    pub window: u32,
    /// Next never-transmitted sequence.
    pub next_new: u32,
    /// Sequences sent and unacknowledged.
    pub outstanding: BTreeSet<u32>,
    /// Sequences marked lost, awaiting retransmission (lowest first).
    pub retx: BTreeSet<u32>,
    /// Per-sequence delivered flags (SACK state), grown lazily so the
    /// pre-created flow table stays allocation-free until traffic flows.
    acked: SeqBits,
    /// Exponential RTO backoff.
    pub backoff: u32,
}

impl PfabricTx {
    /// A fresh sender for a flow; `size` is carried per call, so the state
    /// here allocates nothing until packets move.
    pub fn new(_size: u32, window: u32) -> Self {
        PfabricTx {
            window: window.max(1),
            next_new: 0,
            outstanding: BTreeSet::new(),
            retx: BTreeSet::new(),
            acked: SeqBits::new(),
            backoff: 1,
        }
    }

    /// Next sequence to transmit, if the window allows: lost packets first
    /// (they carry the smallest remaining and the receiver needs them),
    /// then new data.
    pub fn take_next(&mut self, size: u32) -> Option<u32> {
        if self.outstanding.len() >= self.window as usize {
            return None;
        }
        let seq = if let Some(&s) = self.retx.iter().next() {
            self.retx.remove(&s);
            s
        } else if self.next_new < size {
            let s = self.next_new;
            self.next_new += 1;
            s
        } else {
            return None;
        };
        self.outstanding.insert(seq);
        Some(seq)
    }

    /// Processes a selective ACK. Returns `true` on new progress.
    pub fn on_ack(&mut self, seq: u32) -> bool {
        self.outstanding.remove(&seq);
        self.retx.remove(&seq);
        if !self.acked.set(seq) {
            return false;
        }
        self.backoff = 1;
        true
    }

    /// Timeout: every in-flight packet is presumed lost. Allocation-free:
    /// the outstanding set's nodes move wholesale into the retransmit set.
    pub fn on_timeout(&mut self) {
        self.retx.append(&mut self.outstanding);
        self.backoff = (self.backoff * 2).min(16);
    }

    /// Remaining size in packets (the pFabric rank source).
    pub fn remaining(&self, size: u32) -> u32 {
        size - self.acked.count()
    }

    /// Whether every packet is acknowledged.
    pub fn done(&self, size: u32) -> bool {
        self.acked.count() >= size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dctcp_slow_start_then_marks_shrink_window() {
        let mut t = Dctcp::new(2.0);
        let size = 1_000;
        // Unmarked ACKs: exponential growth.
        let mut sent = 0;
        while sent < 64 {
            while t.can_send(size) {
                t.take_next();
                sent += 1;
            }
            let target = t.snd_nxt;
            t.on_ack(target, false);
        }
        assert!(t.cwnd > 32.0, "slow start grew cwnd to {}", t.cwnd);
        let before = t.cwnd;
        // A fully marked window shrinks multiplicatively by α/2.
        for _ in 0..3 {
            let target = (t.snd_una + t.cwnd as u32).min(size);
            t.on_ack(target, true);
        }
        assert!(
            t.cwnd < before,
            "marks must shrink cwnd ({} → {})",
            before,
            t.cwnd
        );
        assert!(t.alpha > 0.0);
    }

    #[test]
    fn dctcp_timeout_goes_back_n() {
        let mut t = Dctcp::new(10.0);
        for _ in 0..5 {
            t.take_next();
        }
        assert_eq!(t.snd_nxt, 5);
        t.on_timeout();
        assert_eq!(t.snd_nxt, 0, "GBN rewinds to snd_una");
        assert_eq!(t.cwnd as u32, 1);
        assert_eq!(t.backoff, 2);
        // Progress resets backoff.
        t.take_next();
        t.on_ack(1, false);
        assert_eq!(t.backoff, 1);
    }

    #[test]
    fn dctcp_dup_acks_are_ignored() {
        let mut t = Dctcp::new(4.0);
        t.take_next();
        t.take_next();
        assert!(t.on_ack(1, false));
        assert!(!t.on_ack(1, false));
        assert!(!t.on_ack(0, false));
        assert_eq!(t.snd_una, 1);
    }

    #[test]
    fn pfabric_window_limits_outstanding() {
        let mut t = PfabricTx::new(100, 4);
        let mut got = Vec::new();
        while let Some(s) = t.take_next(100) {
            got.push(s);
        }
        assert_eq!(got, vec![0, 1, 2, 3], "window of 4");
        assert!(t.on_ack(2));
        assert_eq!(t.take_next(100), Some(4));
        assert_eq!(t.take_next(100), None);
    }

    #[test]
    fn pfabric_timeout_retransmits_lowest_first() {
        let mut t = PfabricTx::new(10, 3);
        t.take_next(10);
        t.take_next(10);
        t.take_next(10); // 0,1,2 outstanding
        t.on_ack(1);
        t.on_timeout(); // 0 and 2 presumed lost
        assert_eq!(t.take_next(10), Some(0), "lowest lost seq first");
        assert_eq!(t.take_next(10), Some(2));
        assert_eq!(t.take_next(10), Some(3), "then new data");
        assert_eq!(t.remaining(10), 9);
    }

    #[test]
    fn pfabric_completion_by_distinct_acks() {
        let mut t = PfabricTx::new(3, 8);
        for _ in 0..3 {
            t.take_next(3);
        }
        t.on_ack(2);
        t.on_ack(0);
        assert!(!t.done(3));
        t.on_ack(1);
        assert!(t.done(3));
        assert!(!t.on_ack(1), "duplicate SACK is no progress");
    }
}
