//! Integration: every *exact* queue implementation is interchangeable —
//! swapping the data structure must never change the schedule, only its
//! cost (the premise of the whole paper: the queue is a pluggable
//! building block).

use eiffel_repro::core::{QueueConfig, QueueKind, RankedQueue};
use eiffel_repro::sim::SplitMix64;

const EXACT_KINDS: &[QueueKind] = &[
    QueueKind::HierFfs,
    QueueKind::Cffs,
    QueueKind::Gradient,
    QueueKind::BucketHeap,
    QueueKind::BinaryHeap,
    QueueKind::BTree,
];

/// Identical operation sequences produce identical `(rank, payload)`
/// streams across every exact kind.
#[test]
fn exact_kinds_produce_identical_schedules() {
    let cfg = QueueConfig::new(4_096, 1, 0);
    let mut queues: Vec<(QueueKind, Box<dyn RankedQueue<u64>>)> =
        EXACT_KINDS.iter().map(|&k| (k, k.build(cfg))).collect();
    let mut rng = SplitMix64::new(0xE0E0);
    let mut reference: Vec<Option<(u64, u64)>> = Vec::new();
    for step in 0..30_000u64 {
        let dequeue = rng.next_below(3) == 0;
        if dequeue {
            let expect = queues[0].1.dequeue_min();
            for (kind, q) in queues.iter_mut().skip(1) {
                assert_eq!(q.dequeue_min(), expect, "step {step} kind {kind:?}");
            }
            reference.push(expect);
        } else {
            let rank = rng.next_below(4_096);
            for (_, q) in queues.iter_mut() {
                q.enqueue(rank, step).unwrap();
            }
        }
    }
    // Drain everything and keep comparing.
    loop {
        let expect = queues[0].1.dequeue_min();
        for (kind, q) in queues.iter_mut().skip(1) {
            assert_eq!(q.dequeue_min(), expect, "drain, kind {kind:?}");
        }
        if expect.is_none() {
            break;
        }
    }
}

/// The approximate queue over the same script: never loses elements, and
/// its dequeue stream is a permutation of the exact stream.
#[test]
fn approx_kind_is_a_lossless_permutation() {
    let cfg = QueueConfig::new(2_048, 1, 0);
    let mut exact = QueueKind::HierFfs.build::<u64>(cfg);
    let mut approx = QueueKind::ApproxGradient { alpha: 64 }.build::<u64>(cfg);
    let mut rng = SplitMix64::new(0xA0A0);
    let mut exact_out = Vec::new();
    let mut approx_out = Vec::new();
    for step in 0..20_000u64 {
        if rng.next_below(3) == 0 {
            if let Some((r, v)) = exact.dequeue_min() {
                exact_out.push((r, v));
            }
            if let Some((r, v)) = approx.dequeue_min() {
                approx_out.push((r, v));
            }
        } else {
            let rank = rng.next_below(2_048);
            exact.enqueue(rank, step).unwrap();
            approx.enqueue(rank, step).unwrap();
        }
    }
    while let Some(x) = exact.dequeue_min() {
        exact_out.push(x);
    }
    while let Some(x) = approx.dequeue_min() {
        approx_out.push(x);
    }
    assert_eq!(exact_out.len(), approx_out.len(), "no element lost");
    let mut a = exact_out.clone();
    let mut b = approx_out.clone();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "same multiset of (rank, payload)");
}

/// Moving-window kinds under a shaping workload (monotone deadline-ish
/// ranks): cFFS matches the comparison-based queues exactly.
#[test]
fn moving_window_kinds_agree_on_shaping_workload() {
    let cfg = QueueConfig::new(8_192, 1, 0);
    let mut cffs = QueueKind::Cffs.build::<u64>(cfg);
    let mut btree = QueueKind::BTree.build::<u64>(cfg);
    let mut rng = SplitMix64::new(0x5AFE);
    let mut ts = 0u64;
    for step in 0..50_000u64 {
        ts += rng.next_below(20);
        cffs.enqueue(ts, step).unwrap();
        btree.enqueue(ts, step).unwrap();
        if step % 2 == 0 {
            assert_eq!(cffs.dequeue_min(), btree.dequeue_min());
        }
    }
    loop {
        let (a, b) = (cffs.dequeue_min(), btree.dequeue_min());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
