//! Integration: the three kernel shapers (§5.1.1) enforce identical
//! shaping behaviour — the precondition for comparing their CPU cost.
//! "We only report CPU efficiency results as we find that Eiffel matches
//! the scheduling behavior of the baselines."

use eiffel_repro::qdisc::{run, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, ShaperQdisc};
use eiffel_repro::sim::{Packet, Rate, SECOND};

/// Identical stamping ⇒ identical release schedules between Eiffel and
/// Carousel at equal granularity, packet by packet.
#[test]
fn eiffel_and_carousel_release_identically() {
    let gran = 10_000; // 10 µs buckets/slots
    let mut e = EiffelQdisc::new(1 << 14, gran);
    let mut c = CarouselQdisc::new(1 << 14, gran);
    for i in 0..500u64 {
        let flow = (i % 25) as u32;
        e.enqueue(0, Packet::mtu(i, flow, 0), 48_000_000);
        c.enqueue(0, Packet::mtu(i, flow, 0), 48_000_000);
    }
    let mut now = 0;
    let (mut eo, mut co) = (Vec::new(), Vec::new());
    while eo.len() < 500 || co.len() < 500 {
        while let Some(p) = e.dequeue(now) {
            eo.push((now, p.id));
        }
        while let Some(p) = c.dequeue(now) {
            co.push((now, p.id));
        }
        now += gran;
        assert!(now < 10 * SECOND, "must converge");
    }
    assert_eq!(eo, co);
}

/// All three qdiscs hold the aggregate to the configured rate under the
/// paper's workload shape (fixed core counts come later — behaviour first).
#[test]
fn all_shapers_hold_the_aggregate_rate() {
    let cfg = HostConfig {
        flows: 400,
        aggregate: Rate::mbps(480),
        duration: SECOND / 2,
        bin: SECOND / 10,
        tsq_budget: 2,
        batch: 1,
    };
    let want = cfg.aggregate.as_bps() as f64;
    let reports = [
        run(FqQdisc::new(), &cfg),
        run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
        run(EiffelQdisc::paper_config(), &cfg),
    ];
    for r in &reports {
        let rel = (r.achieved_bps - want).abs() / want;
        assert!(
            rel < 0.05,
            "{}: {:.1} vs {:.1} Mbps",
            r.name,
            r.achieved_bps / 1e6,
            want / 1e6
        );
    }
    // Work accounting: every transmitted packet is a full MTU.
    for r in &reports {
        assert!(r.transmitted > 0);
    }
}

/// Batched softirq drains (`HostConfig::batch = 16`) must not move the
/// achieved aggregate outside the same tolerance the packet-at-a-time
/// hosts meet: `dequeue_batch` only changes *when the min-find is paid*,
/// never which packets are due (the batch-equivalence property tests pin
/// the sequence; this pins the end-to-end shaping conformance).
#[test]
fn batched_drains_hold_the_aggregate_rate() {
    let cfg = HostConfig {
        flows: 400,
        aggregate: Rate::mbps(480),
        duration: SECOND / 2,
        bin: SECOND / 10,
        tsq_budget: 2,
        batch: 16,
    };
    let want = cfg.aggregate.as_bps() as f64;
    let reports = [
        run(FqQdisc::new(), &cfg),
        run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
        run(EiffelQdisc::paper_config(), &cfg),
    ];
    for r in &reports {
        let rel = (r.achieved_bps - want).abs() / want;
        assert!(
            rel < 0.05,
            "{} (batch 16): {:.1} vs {:.1} Mbps",
            r.name,
            r.achieved_bps / 1e6,
            want / 1e6
        );
    }
    // Batch size must not change *what* is transmitted, only how it is
    // drained: same packet count as the batch-1 run.
    let mut cfg1 = cfg;
    cfg1.batch = 1;
    let batch1 = run(EiffelQdisc::paper_config(), &cfg1);
    assert_eq!(reports[2].transmitted, batch1.transmitted);
}

/// Failure injection: a zero pacing rate must not panic or emit packets
/// early — FQ treats zero as "unpaced", the timestampers emit immediately;
/// either way nothing is lost.
#[test]
fn zero_rate_flows_do_not_wedge_the_qdiscs() {
    let mut e = EiffelQdisc::new(1 << 10, 1_000);
    let mut f = FqQdisc::new();
    let mut c = CarouselQdisc::new(1 << 10, 1_000);
    for i in 0..10u64 {
        e.enqueue(0, Packet::mtu(i, 0, 0), 0);
        f.enqueue(0, Packet::mtu(i, 0, 0), 0);
        c.enqueue(0, Packet::mtu(i, 0, 0), 0);
    }
    let drain = |q: &mut dyn ShaperQdisc| {
        let mut n = 0;
        let mut now = 0;
        while !q.is_empty() && now < SECOND {
            while q.dequeue(now).is_some() {
                n += 1;
            }
            now += 1_000;
        }
        n
    };
    assert_eq!(drain(&mut e), 10);
    assert_eq!(drain(&mut f), 10);
    assert_eq!(drain(&mut c), 10);
}

/// The cFFS shaper horizon overflow is survivable: timestamps far beyond
/// the horizon clamp into the overflow bucket and still drain.
#[test]
fn beyond_horizon_timestamps_still_drain() {
    // Tiny horizon: 1024 buckets × 1 µs ≈ 1 ms per half.
    let mut e = EiffelQdisc::new(1_024, 1_000);
    // 1 kbps pacing: MTU every 12 s — light-years past the horizon.
    for i in 0..4u64 {
        e.enqueue(0, Packet::mtu(i, 0, 0), 1_000);
    }
    let mut got = 0;
    let mut now = 0;
    while got < 4 && now < 100 * SECOND {
        if e.dequeue(now).is_some() {
            got += 1;
        }
        now += 1_000_000;
    }
    assert_eq!(got, 4, "clamped packets must still be released");
}
