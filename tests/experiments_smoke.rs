//! Integration smoke of every experiment harness at miniature scale: the
//! exact code paths behind the figure binaries must run end to end and
//! produce correctly-ordered results.

use std::time::Duration;

use eiffel_bench::microbench::{
    approx_error_at_occupancy, drain_rate_occupancy, drain_rate_packets_per_bucket, FillOrder,
    FillPattern, QueueUnderTest,
};
use eiffel_bench::runners;
use eiffel_repro::dcsim::{SchedulerBackend, System, Topology};

/// Figure 9/10 path: quick kernel-shaping run with the headline ordering.
#[test]
fn fig09_fig10_quick() {
    let reports = runners::kernel_shaping(&runners::KernelShapingScale::quick());
    let (fq, carousel, eiffel) = (&reports[0], &reports[1], &reports[2]);
    assert!(eiffel.median_cores < fq.median_cores, "Eiffel must beat FQ");
    assert!(
        eiffel.median_cores < carousel.median_cores,
        "Eiffel must beat Carousel"
    );
    // Fig 10 mechanism: Carousel's softirq share dominates Eiffel's.
    let softirq = |r: &eiffel_repro::qdisc::HostReport| {
        r.breakdown.iter().map(|&(_, i)| i).sum::<f64>() / r.breakdown.len() as f64
    };
    assert!(
        softirq(carousel) > softirq(eiffel),
        "Carousel pays more softirq"
    );
}

/// Figure 12 path: every scheduler produces a rate; Eiffel ≥ heap at the
/// largest quick flow count.
#[test]
fn fig12_quick() {
    let dur = Duration::from_millis(80);
    for flows in [16usize, 512] {
        let e = runners::hclock_max_rate("eiffel", flows, 10_000, 1_500, 1, dur);
        let h = runners::hclock_max_rate("hclock", flows, 10_000, 1_500, 1, dur);
        let t = runners::hclock_max_rate("tc", flows, 10_000, 1_500, 1, dur);
        for (name, v) in [("eiffel", e), ("hclock", h), ("tc", t)] {
            assert!(v > 1.0, "{name}@{flows}: {v} Mbps");
        }
    }
}

/// Figure 15 path: Eiffel's pFabric beats the heap baseline at scale.
#[test]
fn fig15_quick() {
    let e = runners::pfabric_max_rate(true, 2_000, Duration::from_millis(100));
    let h = runners::pfabric_max_rate(false, 2_000, Duration::from_millis(100));
    assert!(e > h, "eiffel {e:.0} Mbps vs heap {h:.0} Mbps");
}

/// Figure 16/17 paths: positive rates; BH never the fastest at 1 pkt/bucket.
#[test]
fn fig16_fig17_quick() {
    let budget = Duration::from_millis(40);
    let bh = drain_rate_packets_per_bucket(QueueUnderTest::BucketHeap, 2_000, 1, 1, budget).mpps;
    let cf = drain_rate_packets_per_bucket(QueueUnderTest::Cffs, 2_000, 1, 1, budget).mpps;
    assert!(bh > 0.0 && cf > 0.0);
    assert!(cf > bh, "cFFS ({cf:.1} Mpps) must beat BH ({bh:.1} Mpps)");
    let mut fill_order = FillOrder::new();
    let occ = drain_rate_occupancy(
        QueueUnderTest::Approx,
        2_000,
        0.9,
        FillPattern::Sparse,
        &mut fill_order,
        budget,
    );
    assert!(occ.mpps > 0.0);
    assert!((0.0..=1.0).contains(&occ.hit_rate));
}

/// Tree-policy cost path: every node program (fifo floor, WFQ, LSTF,
/// hClock, HFSC) runs end to end and prices out as a finite cost.
#[test]
fn fig_tree_policy_quick() {
    let args = eiffel_bench::BenchArgs::from_iter(["--quick".to_string()], None);
    let r = runners::fig_tree_policy_report(&args, &runners::TreePolicyScale::tiny());
    let sw = &r.sweeps[0];
    assert_eq!(sw.series.len(), 5, "five node programs");
    for s in &sw.series {
        for &v in &s.values {
            assert!(v.is_finite() && v > 0.0, "{}: {v} ns/pkt", s.name);
        }
    }
}

/// Figure 18 path: error rises as occupancy falls.
#[test]
fn fig18_quick() {
    let lo = approx_error_at_occupancy(2_000, 0.7, 24, 1);
    let hi = approx_error_at_occupancy(2_000, 0.99, 24, 1);
    assert!(
        lo > hi,
        "error at 0.7 occupancy ({lo:.2}) must exceed error at 0.99 ({hi:.2})"
    );
}

/// Figure 19 path: one load point, all three systems, orderings hold.
#[test]
fn fig19_quick() {
    let loads = [0.5];
    let flows = 150;
    let wheel = SchedulerBackend::FfsWheel;
    let d = runners::pfabric_fct_sweep(System::Dctcp, Topology::small(), &loads, flows, 9, wheel);
    let p = runners::pfabric_fct_sweep(
        System::PfabricExact,
        Topology::small(),
        &loads,
        flows,
        9,
        wheel,
    );
    let a = runners::pfabric_fct_sweep(
        System::PfabricApprox,
        Topology::small(),
        &loads,
        flows,
        9,
        wheel,
    );
    let (ds, ps, as_) = (d[0].avg_small, p[0].avg_small, a[0].avg_small);
    assert!(
        ps < ds,
        "pFabric small-flow NFCT {ps:.2} must beat DCTCP {ds:.2}"
    );
    assert!(
        (as_ - ps).abs() / ps < 0.5,
        "approx ({as_:.2}) tracks exact ({ps:.2})"
    );
    assert!(
        d[0].events > 0 && d[0].wall_secs > 0.0,
        "event-loop counters populated"
    );
}

/// Table 1 rows exist and include every compared system.
#[test]
fn table1_contents() {
    let rows = runners::table1_rows();
    for sys in [
        "FQ/pacing qdisc",
        "hClock",
        "Carousel",
        "OpenQueue",
        "PIFO",
        "Eiffel",
    ] {
        assert!(rows.iter().any(|r| r[0] == sys), "missing {sys}");
    }
}
