//! Cross-crate integration: policy text → compiled scheduler → observed
//! packet schedule, for each class of policy the paper claims Eiffel can
//! express (Table 1's flexibility columns).

use eiffel_repro::pifo::lang::compile;
use eiffel_repro::pifo::EiffelScheduler;
use eiffel_repro::sim::{Nanos, Packet, SECOND};

fn mtu(id: u64, flow: u32) -> Packet {
    Packet::mtu(id, flow, 0)
}

/// Strict priority with three classes, expressed in the DSL, annotated by
/// packet class.
#[test]
fn strict_priority_policy() {
    let t = compile(
        "node root kind=childprio\n\
         node p0 parent=root kind=fifo prio=0\n\
         node p1 parent=root kind=fifo prio=1\n\
         node p2 parent=root kind=fifo prio=2\n",
    )
    .unwrap();
    let leaves = [
        t.node_by_name("p0").unwrap(),
        t.node_by_name("p1").unwrap(),
        t.node_by_name("p2").unwrap(),
    ];
    let mut s = EiffelScheduler::new(
        move |_: Nanos, p: &mut Packet| leaves[(p.flow % 3) as usize],
        t,
    );
    // Enqueue low priority first; drain must come out 0,0,1,1,2,2.
    for id in 0..2u64 {
        s.enqueue(0, mtu(id, 2)).unwrap();
    }
    for id in 2..4u64 {
        s.enqueue(0, mtu(id, 1)).unwrap();
    }
    for id in 4..6u64 {
        s.enqueue(0, mtu(id, 0)).unwrap();
    }
    let order: Vec<u32> = std::iter::from_fn(|| s.dequeue(0))
        .map(|p| p.flow)
        .collect();
    assert_eq!(order, vec![0, 0, 1, 1, 2, 2]);
}

/// Weighted fair sharing (STFQ) divides a congested link ~3:1.
#[test]
fn weighted_fair_policy() {
    let mut t = compile(
        "node root kind=stfq\n\
         node a parent=root kind=fifo weight=3\n\
         node b parent=root kind=fifo weight=1\n",
    )
    .unwrap();
    let a = t.node_by_name("a").unwrap();
    let b = t.node_by_name("b").unwrap();
    for id in 0..400u64 {
        t.enqueue(0, a, mtu(id, 0)).unwrap();
        t.enqueue(0, b, mtu(1_000 + id, 1)).unwrap();
    }
    // Serve 200 packets; class a should get ≈150.
    let mut counts = [0u32; 2];
    for _ in 0..200 {
        let p = t.dequeue(0).expect("backlogged");
        counts[p.flow as usize] += 1;
    }
    assert!(
        (135..=165).contains(&counts[0]),
        "weight-3 class got {}/200 services",
        counts[0]
    );
}

/// pFabric policy from the DSL: least remaining size preempts.
#[test]
fn pfabric_policy_via_dsl() {
    let mut t = compile("node root kind=flow:pfabric").unwrap();
    let root = t.node_by_name("root").unwrap();
    // Flow 1: 5 packets remaining; flow 2: 2 packets remaining.
    for id in 0..5u64 {
        let mut p = mtu(id, 1);
        p.rank = 5;
        t.enqueue(0, root, p).unwrap();
    }
    for id in 5..7u64 {
        let mut p = mtu(id, 2);
        p.rank = 2;
        t.enqueue(0, root, p).unwrap();
    }
    let order: Vec<u32> = std::iter::from_fn(|| t.dequeue(0))
        .map(|p| p.flow)
        .collect();
    assert_eq!(
        order,
        vec![2, 2, 1, 1, 1, 1, 1],
        "short flow first, entirely"
    );
}

/// Rate limiting through the single shaper adheres to the configured rate
/// within bucket granularity over a one-second horizon.
#[test]
fn shaper_rate_adherence() {
    let mut t = compile("node root kind=fifo limit=12mbps").unwrap();
    let root = t.node_by_name("root").unwrap();
    for id in 0..2_000u64 {
        t.enqueue(0, root, mtu(id, 0)).unwrap();
    }
    let mut now = 0;
    let mut bytes = 0u64;
    while now < SECOND {
        now += 50_000;
        while let Some(p) = t.dequeue(now) {
            bytes += p.bytes as u64;
        }
    }
    let mbps = bytes as f64 * 8.0 / 1e6;
    assert!(
        (11.0..=13.0).contains(&mbps),
        "12 Mbps limit produced {mbps:.2} Mbps"
    );
}

/// EDF across two deadline classes: urgent packets overtake within their
/// deadline budget.
#[test]
fn edf_policy_orders_by_deadline() {
    let mut t = compile("node root kind=edf deadlines=500us,5ms").unwrap();
    let root = t.node_by_name("root").unwrap();
    // A lax packet created early, an urgent one created later: deadline
    // 500µs@t=1ms (=1.5ms) beats 5ms@t=0 (=5ms).
    let mut lax = Packet::mtu(0, 0, 0);
    lax.class = 1;
    t.enqueue(0, root, lax).unwrap();
    let mut urgent = Packet::mtu(1, 1, 1_000_000);
    urgent.class = 0;
    t.enqueue(1_000_000, root, urgent).unwrap();
    assert_eq!(t.dequeue(1_000_000).unwrap().id, 1);
    assert_eq!(t.dequeue(1_000_000).unwrap().id, 0);
}

/// The full Figure 1 pipeline: annotator assigns classes, hierarchy mixes
/// strict priority with a shaped bulk class; starvation of bulk is bounded
/// by the priority class's arrival rate, and the shaper caps bulk.
#[test]
fn mixed_policy_pipeline() {
    let t = compile(
        "node root kind=childprio\n\
         node rt   parent=root kind=edf prio=0 deadlines=1ms\n\
         node bulk parent=root kind=fifo prio=1 limit=24mbps\n",
    )
    .unwrap();
    let rt = t.node_by_name("rt").unwrap();
    let bulk = t.node_by_name("bulk").unwrap();
    let mut s = EiffelScheduler::new(
        move |_: Nanos, p: &mut Packet| if p.bytes <= 100 { rt } else { bulk },
        t,
    );
    let mut id = 0;
    for _ in 0..1_000 {
        s.enqueue(0, Packet::mtu(id, 0, 0)).unwrap();
        id += 1;
    }
    s.enqueue(0, Packet::min_sized(id, 1, 0)).unwrap();
    // The small real-time packet leaves first even though 1 000 bulk
    // packets arrived earlier…
    let first = s.dequeue(0).expect("rt packet due");
    assert_eq!(first.bytes, 60);
    // …and bulk drains at its shaped rate (24 Mbps = 2 kpps of MTU).
    let mut now = 0;
    let mut bulk_packets = 0;
    while now < SECOND / 2 {
        now += 100_000;
        while let Some(p) = s.dequeue(now) {
            assert_eq!(p.bytes, 1_500);
            bulk_packets += 1;
        }
    }
    assert!(
        (900..=1_050).contains(&bulk_packets),
        "24 Mbps over 0.5 s ≈ 1000 MTUs, got {bulk_packets}"
    );
}
