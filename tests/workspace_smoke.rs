//! Workspace smoke test: every member crate's public entry points must be
//! reachable through the `eiffel-repro` facade re-exports. The `use`
//! statements are the test — if a crate drops or renames a public item,
//! or the facade loses a re-export, this file stops compiling.

#[allow(unused_imports)]
mod facade_reachability {
    pub use eiffel_repro::bess::{
        measure_rate, BessScheduler, BessTc, FlowSpec, HClockEiffel, HClockHeap, PfabricEiffel,
        PfabricHeap, RateReport, RoundRobinGen, BATCH,
    };
    pub use eiffel_repro::core::{
        recommend, ApproxGradientQueue, ApproxParams, BucketHeapQueue, CffsQueue, Circular,
        CircularApproxQueue, EnqueueError, EnqueueErrorKind, FfsQueue, GradientQueue, GradientWord,
        HeapPq, HierBitmap, HierFfsQueue, HierGradientQueue, QueueConfig, QueueKind, QueueStats,
        RankedQueue, Recommendation, TimingWheel, TreePq, UseCase,
    };
    pub use eiffel_repro::dcsim::{
        run as dcsim_run, FctRecord, Frame, PfabricVariant, PortQueue, SimConfig, SimCounters,
        SimResult, Summary, System, Topology, Verdict,
    };
    pub use eiffel_repro::pifo::{
        compile, Annotator, EiffelScheduler, FlowPolicy, FlowScheduler, FlowState, NodeId,
        ParseError, PifoTree, RankCtx, Shaper, TokenStamper, Transaction, TreeBuilder, TreeError,
    };
    pub use eiffel_repro::qdisc::{
        run as qdisc_run, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig, HostReport, ShaperQdisc,
        TimerStyle,
    };
    pub use eiffel_repro::sim::{
        CpuCategory, CpuMeter, EventQueue, FlowId, Link, Nanos, Packet, Rate, SplitMix64,
        MICROSECOND, MILLISECOND, SECOND,
    };
    pub use eiffel_repro::workloads::{
        EmpiricalCdf, FlowSet, FlowSizeDist, PacedFlow, PoissonArrivals, PACKET_PAYLOAD_BYTES,
    };
}

// The experiment harness crate is not a facade re-export (it is a
// dev-dependency of the facade), but its entry points are part of the
// workspace surface the docs advertise.
#[allow(unused_imports)]
mod bench_reachability {
    pub use eiffel_bench::microbench::{drain_rate_packets_per_bucket, QueueUnderTest};
    pub use eiffel_bench::report::{banner, cdf, table};
    pub use eiffel_bench::{quick_mode, runners};
}

/// One end-to-end touch through the facade paths: a cFFS queue built and
/// drained via `eiffel_repro::core`, ranks stamped via `eiffel_repro::sim`.
#[test]
fn facade_paths_are_usable() {
    use eiffel_repro::core::{CffsQueue, RankedQueue};
    use eiffel_repro::sim::MICROSECOND;

    let mut q: CffsQueue<u32> = CffsQueue::new(64, MICROSECOND, 0);
    q.enqueue(3 * MICROSECOND, 30).unwrap();
    q.enqueue(MICROSECOND, 10).unwrap();
    assert_eq!(q.len(), 2);
    assert_eq!(q.dequeue_min(), Some((MICROSECOND, 10)));
    assert_eq!(q.dequeue_min(), Some((3 * MICROSECOND, 30)));
    assert!(q.is_empty());
}
