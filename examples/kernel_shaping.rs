//! The kernel shaping shoot-out (paper §5.1.1) at demo scale: FQ/pacing vs
//! Carousel vs Eiffel, same workload, metered CPU.
//!
//! ```sh
//! cargo run --release --example kernel_shaping
//! ```

use eiffel_repro::qdisc::{run, CarouselQdisc, EiffelQdisc, FqQdisc, HostConfig};
use eiffel_repro::sim::{Rate, SECOND};

fn main() {
    let cfg = HostConfig {
        flows: 2_000,
        aggregate: Rate::mbps(2_400), // 1.2 Mbps per flow, as in the paper
        duration: SECOND / 2,
        bin: SECOND / 20,
        tsq_budget: 2,
        batch: 1,
    };
    println!(
        "Shaping {} flows at {} Mbps aggregate for {:.1} virtual seconds…\n",
        cfg.flows,
        cfg.aggregate.as_bps() / 1_000_000,
        cfg.duration as f64 / 1e9
    );
    let reports = vec![
        run(FqQdisc::new(), &cfg),
        run(CarouselQdisc::new(1 << 20, 2_000), &cfg),
        run(EiffelQdisc::paper_config(), &cfg),
    ];
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "qdisc", "median cores", "rate (Mbps)", "packets", "timer fires"
    );
    for r in &reports {
        println!(
            "{:<10} {:>14.4} {:>14.1} {:>12} {:>12}",
            r.name,
            r.median_cores,
            r.achieved_bps / 1e6,
            r.transmitted,
            r.timer_fires
        );
    }
    let eiffel = reports.last().expect("three reports");
    println!(
        "\nAll three enforce the same rate; Eiffel does it with the least CPU\n\
         (the paper's Figure 9: 14x less than FQ, 3x less than Carousel at the\n\
         median on their testbed). Carousel's timer fires every wheel slot —\n\
         compare its count with Eiffel's {} exact wakeups.",
        eiffel.timer_fires
    );
}
