//! Datacenter flow scheduling (paper §5.2, Figure 19) at demo scale:
//! DCTCP vs pFabric vs pFabric with Eiffel's approximate queue, on a
//! 32-host leaf-spine fabric under the web-search workload.
//!
//! ```sh
//! cargo run --release --example datacenter_fct
//! ```

use eiffel_repro::dcsim::{run, SimConfig, System, Topology};

fn main() {
    let topo = Topology::small();
    let load = 0.6;
    let flows = 300;
    println!(
        "{} hosts, load {:.0}%, {} web-search flows per system…\n",
        topo.hosts(),
        load * 100.0,
        flows
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "system", "avg small", "p99 small", "avg large", "drops", "timeouts"
    );
    for (name, sys) in [
        ("DCTCP", System::Dctcp),
        ("pFabric", System::PfabricExact),
        ("pFabric-Approx", System::PfabricApprox),
    ] {
        let r = run(SimConfig::new(topo, sys, load, flows, 0xD17));
        let f = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
        println!(
            "{:<16} {:>10} {:>10} {:>10} {:>9} {:>9}",
            name,
            f(r.summary.avg_small),
            f(r.summary.p99_small),
            f(r.summary.avg_large),
            r.counters.drops,
            r.counters.timeouts
        );
    }
    println!(
        "\nNormalized FCT (measured / ideal). pFabric's priority scheduling +\n\
         priority dropping protect short flows; replacing its exact priority\n\
         queue with Eiffel's approximate gradient queue barely moves the\n\
         numbers — \"approximation has minimal effect on overall network\n\
         behavior\" (paper §5.2)."
    );
}
