//! Quickstart: the Eiffel priority queues and the programmable scheduler
//! in five minutes.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use eiffel_repro::core::{
    recommend, ApproxGradientQueue, CffsQueue, RankedQueue, Recommendation, UseCase,
};
use eiffel_repro::pifo::lang::compile;
use eiffel_repro::sim::Packet;

fn main() {
    // ------------------------------------------------------------------
    // 1. The cFFS: a moving-window integer priority queue (paper §3.1.1).
    //    Ranks here are nanosecond transmission timestamps; buckets are
    //    100 µs wide, 2 000 buckets per window half.
    // ------------------------------------------------------------------
    let mut shaper: CffsQueue<&str> = CffsQueue::new(2_000, 100_000, 0);
    shaper.enqueue(1_500_000, "video frame").unwrap();
    shaper.enqueue(200_000, "voice sample").unwrap();
    shaper.enqueue(1_499_999, "telemetry").unwrap();
    println!("cFFS dequeue order (by timestamp, FIFO within a bucket):");
    while let Some((ts, what)) = shaper.dequeue_min() {
        println!("  t={:>9} ns  {}", ts, what);
    }

    // ------------------------------------------------------------------
    // 2. The approximate gradient queue: one division instead of a
    //    bitmap descent (§3.1.2) — exact while occupancy is dense.
    // ------------------------------------------------------------------
    let mut approx: ApproxGradientQueue<u32> = ApproxGradientQueue::new(523, 1);
    for rank in 0..523u64 {
        approx.enqueue(rank, rank as u32).unwrap();
    }
    let (first, _) = approx.dequeue_min().unwrap();
    println!("\napprox gradient queue over 523 dense buckets: min = {first} (exact)");

    // ------------------------------------------------------------------
    // 3. Which queue should your policy use? (Figure 20)
    // ------------------------------------------------------------------
    let policy = UseCase {
        moving_range: true,
        priority_levels: 20_000,
        uniform_occupancy: false,
    };
    assert_eq!(recommend(&policy), Recommendation::Cffs);
    println!(
        "\nFigure 20 guide: rate limiting over 20k levels → {:?}",
        recommend(&policy)
    );

    // ------------------------------------------------------------------
    // 4. The programming model: compile a policy, schedule packets.
    //    LQF (Figure 6) needs per-flow + on-dequeue ranking — the part
    //    of Eiffel plain PIFO cannot express.
    // ------------------------------------------------------------------
    let mut tree = compile("node root kind=flow:lqf").unwrap();
    let root = tree.node_by_name("root").unwrap();
    for (id, flow) in [(0u64, 1u32), (1, 1), (2, 1), (3, 2)] {
        tree.enqueue(0, root, Packet::mtu(id, flow, 0)).unwrap();
    }
    println!("\nLongest-Queue-First over two flows (flow 1 is 3-deep):");
    while let Some(p) = tree.dequeue(0) {
        println!("  served flow {}", p.flow);
    }
}
