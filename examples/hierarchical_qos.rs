//! The paper's Figure 7 policy, end to end: a hierarchy with nested rate
//! limits served through Eiffel's single shaper (§3.2.2), plus weighted
//! sharing between siblings.
//!
//! ```sh
//! cargo run --example hierarchical_qos
//! ```

use eiffel_repro::pifo::lang::compile;
use eiffel_repro::sim::{Packet, SECOND};

fn main() {
    // Figure 7: the rightmost leaf has a 7 Mbps limit, its parent a
    // 10 Mbps limit, and the aggregate is paced (here 20 Mbps). The right
    // subtree's *share* (3 of 4) would entitle it to 15 Mbps — the nested
    // limits must cap it at 7 regardless, leaving 13 for the sibling.
    let mut tree = compile(
        "node root  kind=stfq limit=20mbps\n\
         node left  parent=root kind=fifo weight=1\n\
         node right parent=root kind=stfq weight=3 limit=10mbps\n\
         node rr    parent=right kind=fifo weight=1 limit=7mbps\n",
    )
    .unwrap();
    let left = tree.node_by_name("left").unwrap();
    let rr = tree.node_by_name("rr").unwrap();

    // Backlog both classes with more than a second of traffic each.
    let mut id = 0u64;
    for _ in 0..2_500 {
        tree.enqueue(0, left, Packet::mtu(id, 1, 0)).unwrap();
        id += 1;
        tree.enqueue(0, rr, Packet::mtu(id, 2, 0)).unwrap();
        id += 1;
    }

    // Drive for one simulated second with a 100 µs polling clock.
    let mut now = 0;
    let mut bytes = [0u64; 3];
    while now < SECOND {
        now += 100_000;
        while let Some(p) = tree.dequeue(now) {
            bytes[p.flow as usize] += p.bytes as u64;
        }
    }
    let mbps = |b: u64| b as f64 * 8.0 / 1e6;
    println!("After 1 simulated second under the Figure 7 policy:");
    println!("  left  (weight 1, unlimited): {:6.2} Mbps", mbps(bytes[1]));
    println!(
        "  right (weight 3, nested 7 Mbps limit): {:6.2} Mbps",
        mbps(bytes[2])
    );
    println!(
        "  total (paced at 20 Mbps):    {:6.2} Mbps",
        mbps(bytes[1] + bytes[2])
    );
    println!(
        "\nThe right subtree's share would entitle it to 15 Mbps, but the nested\n\
         7/10 Mbps limits cap it at 7; the left class takes the rest of the\n\
         20 Mbps pacing budget — one shaper queue carried every limit\n\
         (paper §3.2.2, Figures 7–8)."
    );
}
