//! # eiffel-repro — Eiffel: Efficient and Flexible Software Packet Scheduling
//!
//! A Rust reproduction of the NSDI 2019 paper (Saeed, Zhao, Dukkipati,
//! Ammar, Zegura, Harras, Vahdat). This facade crate re-exports the
//! workspace members and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! * [`core`] — the integer bucketed priority queues (§3.1): cFFS, exact
//!   and approximate gradient queues, baselines, the Figure 20 guide;
//! * [`pifo`] — the programmable scheduler model (§3.2): PIFO trees plus
//!   Eiffel's per-flow ranking, on-dequeue ranking, unified shaper;
//! * [`sim`] — virtual-time event simulation and CPU metering;
//! * [`workloads`] — flow-size distributions and arrival processes;
//! * [`qdisc`] — the kernel shaping use case (Figures 9–10);
//! * [`bess`] — the busy-polling switch use cases (Figures 12, 13, 15);
//! * [`dcsim`] — the leaf-spine datacenter simulation (Figure 19).
//!
//! Start with `examples/quickstart.rs`, then DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use eiffel_bess as bess;
pub use eiffel_core as core;
pub use eiffel_dcsim as dcsim;
pub use eiffel_pifo as pifo;
pub use eiffel_qdisc as qdisc;
pub use eiffel_sim as sim;
pub use eiffel_workloads as workloads;
